(* apex — command-line front end for the APEX design-space exploration
   flow.  See `apex --help`. *)

open Cmdliner

module Apps = Apex_halide.Apps
module Analysis = Apex_mining.Analysis
module Pattern = Apex_mining.Pattern
module G = Apex_dfg.Graph
module D = Apex_merging.Datapath
module Registry = Apex_telemetry.Registry
module Report = Apex_telemetry.Report
module Json = Apex_telemetry.Json

let app_arg =
  let doc = "Application name (see `apex apps`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let app_by_name name =
  match Apps.by_name name with
  | a -> a
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf "unknown application %S (see `apex apps`)" name)

let variant_arg =
  let doc =
    "PE variant: base, pe1:<app>, pek:<app>:<k>, spec:<app>, ip, ip2, ip3, ml."
  in
  Arg.(value & opt string "base" & info [ "variant"; "v" ] ~docv:"VARIANT" ~doc)

(* --- telemetry plumbing: a --trace[=FILE] flag shared by every
   subcommand.  --trace enables the registry and prints the span tree
   and counter table after the run; --trace=FILE (or the APEX_TRACE
   environment variable) additionally writes the JSON report. *)

let trace_arg =
  let doc =
    "Enable telemetry: print the span tree and counter table after the run. \
     With $(docv), also write the machine-readable JSON report there. The \
     APEX_TRACE environment variable enables the JSON report without the \
     flag."
  in
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc)

(* resolve the report path: an explicit --trace=FILE wins over APEX_TRACE *)
let trace_report_path trace =
  match trace with
  | Some file when file <> "" -> Some file
  | _ -> Report.env_trace_path ()

let emit_trace ~print trace =
  let snap = Registry.snapshot () in
  if print then Format.printf "@.%a" Report.pp snap;
  match trace_report_path trace with
  | None -> ()
  | Some path -> (
      (* a failed report write must not change the run's outcome *)
      match Report.write_file path snap with
      | () -> Format.eprintf "telemetry: JSON report written to %s@." path
      | exception Sys_error m ->
          Format.eprintf "telemetry: cannot write JSON report: %s@." m)

let with_trace trace f =
  if trace = None && Report.env_trace_path () = None then f ()
  else begin
    Registry.enable ();
    Registry.reset ();
    Fun.protect f ~finally:(fun () -> emit_trace ~print:(trace <> None) trace)
  end

(* --- phase-boundary verification: a --check flag shared by the flow
   subcommands.  LLVM -verify-each style: every phase hands its output
   IR to the lint engine; errors abort the run. *)

let check_arg =
  let doc =
    "Verify every intermediate artifact at phase boundaries (after mining, \
     merging, rule synthesis and pipelining) with the lint engine; abort on \
     invariant violations."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let set_check check = if check then Apex.Check.enable ()

(* --- validated graph optimization: an --optimize flag shared by the
   flow subcommands.  Application kernels are reduced by the
   abstract-interpretation optimizer (constant folding, identities, CSE,
   dead-node elimination) before mining, merging, mapping or linting. *)

let optimize_arg =
  let doc =
    "Optimize application kernels (SMT-validated constant folding, \
     algebraic identities, CSE, dead-node elimination) before they enter \
     the flow, so mining and merging run on reduced graphs."
  in
  Arg.(value & flag & info [ "optimize" ] ~doc)

let set_optimize optimize = if optimize then Apex.Optimize.enable ()

(* --- execution runtime: --jobs / --no-cache flags shared by the flow
   subcommands.  Evaluated before the run function so every phase sees
   the configured pool width and cache state. *)

let jobs_arg =
  let doc =
    "Worker domains for the parallel phases (mining, rule synthesis, \
     evaluation). Defaults to the APEX_JOBS environment variable, else the \
     machine's core count. Results are bit-identical whatever $(docv) is."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc =
    "Disable the on-disk artifact cache (see APEX_CACHE_DIR): recompute \
     every phase and write nothing."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

(* --- resource governance: --deadline / --phase-deadline /
   --inject-fault, shared by every flow subcommand via [exec_t].
   Evaluated before the run function, so the root budget and any armed
   fault are in place before the first phase ticks. *)

let deadline_arg =
  let doc =
    "Wall-clock budget for the whole run, in seconds. Phases that overrun \
     degrade gracefully (best-so-far results, flagged as degraded in the \
     telemetry report) instead of aborting."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC" ~doc)

let phase_deadline_arg =
  let doc =
    "Per-phase wall-clock budget as PHASE=SEC (repeatable; phases: mining, \
     merging, synthesis, evaluate, analysis). Tightens the global \
     --deadline for that phase only."
  in
  Arg.(
    value & opt_all string []
    & info [ "phase-deadline" ] ~docv:"PHASE=SEC" ~doc)

let inject_fault_arg =
  let doc =
    "Deterministically inject one fault at the $(i,N)th occurrence of a \
     registered site (SITE or SITE:N; see DESIGN.md \"Degradation \
     semantics\"), to exercise the recovery ladders. The APEX_FAULT \
     environment variable is the equivalent setting."
  in
  Arg.(
    value & opt (some string) None
    & info [ "inject-fault" ] ~docv:"SITE[:N]" ~doc)

let known_phases = [ "mining"; "merging"; "synthesis"; "evaluate"; "analysis" ]

let setup_guard deadline phase_deadlines fault =
  (match deadline with
  | Some s when s > 0.0 ->
      Apex_guard.set_root (Apex_guard.Budget.v ~deadline_s:s ())
  | Some s -> invalid_arg (Printf.sprintf "--deadline: %g is not positive" s)
  | None -> ());
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i -> (
          let phase = String.sub spec 0 i in
          let secs = String.sub spec (i + 1) (String.length spec - i - 1) in
          if not (List.mem phase known_phases) then
            invalid_arg
              (Printf.sprintf "--phase-deadline: unknown phase %S (phases: %s)"
                 phase
                 (String.concat ", " known_phases));
          match float_of_string_opt secs with
          | Some s when s > 0.0 -> Apex_guard.set_phase_deadline phase s
          | _ ->
              invalid_arg
                (Printf.sprintf "--phase-deadline: malformed seconds %S in %S"
                   secs spec))
      | None ->
          invalid_arg
            (Printf.sprintf "--phase-deadline: expected PHASE=SEC, got %S" spec))
    phase_deadlines;
  match fault with
  | Some spec -> Apex_guard.Fault.arm spec
  | None -> Apex_guard.Fault.arm_from_env ()

let exec_t =
  let setup jobs no_cache deadline phase_deadlines fault =
    Option.iter Apex_exec.Pool.set_jobs jobs;
    if no_cache then Apex_exec.Store.set_enabled false;
    setup_guard deadline phase_deadlines fault
  in
  Term.(
    const setup $ jobs_arg $ no_cache_arg $ deadline_arg $ phase_deadline_arg
    $ inject_fault_arg)

(* --- apps --- *)

let apps_cmd =
  let run () =
    Format.printf "%-11s %-7s %9s %7s %6s %6s  %s@." "name" "domain" "compute"
      "unroll" "#mem" "#io" "description";
    List.iter
      (fun (a : Apps.t) ->
        Format.printf "%-11s %-7s %9d %7d %6d %6d  %s@." a.name
          (match a.domain with
          | Apps.Image_processing -> "IP"
          | Apps.Machine_learning -> "ML")
          (List.length (G.compute_ids a.graph))
          a.unroll a.mem_tiles a.io_tiles a.description)
      (Apps.evaluated () @ Apps.unseen () @ Apps.extended ())
  in
  Cmd.v
    (Cmd.info "apps" ~doc:"List the bundled applications (Table 1 plus unseen).")
    Term.(const run $ const ())

(* --- mine (frequent-subgraph analysis) --- *)

let mine_cmd =
  let run () trace optimize app top =
    with_trace trace @@ fun () ->
    set_optimize optimize;
    let a = app_by_name app in
    let ranked = Apex.Variants.analysis_of a in
    Format.printf "%d frequent subgraphs for %s; top %d by MIS:@."
      (List.length ranked) app top;
    List.iteri
      (fun i r -> if i < top then Format.printf "  %a@." Analysis.pp_ranked r)
      ranked
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"How many subgraphs to print.")
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:"Mine an application's frequent subgraphs and rank them by MIS size.")
    Term.(const run $ exec_t $ trace_arg $ optimize_arg $ app_arg $ top)

(* --- analyze (static analysis facts + validated reduction) --- *)

let analyze_cmd =
  let run () trace optimize apps all json widths configs =
    with_trace trace @@ fun () ->
    set_optimize optimize;
    let apps =
      if all then Apex.Lint_run.all_apps ()
      else if apps = [] then
        invalid_arg "analyze: name at least one application, or pass --all"
      else List.map app_by_name apps
    in
    if configs then begin
      let reports = Apex.Configspace_run.run apps in
      if json then
        print_endline (Json.to_string (Apex.Configspace_run.to_json reports))
      else Format.printf "%a" Apex.Configspace_run.pp reports;
      (* an unrealizable registered config is a merge bug; a reverted
         pruning is a configspace-analysis soundness bug *)
      if Apex.Configspace_run.any_failed reports then exit 1
    end
    else begin
      let reports = Apex.Analyze_run.run apps in
      if json then
        print_endline (Json.to_string (Apex.Analyze_run.to_json reports))
      else Format.printf "%a" (Apex.Analyze_run.pp ~width_table:widths) reports;
      (* a failed validation is a soundness bug in the optimizer (resp.
         the width-inference ladder) *)
      if
        not
          (List.for_all
             (fun (r : Apex.Analyze_run.app_report) ->
               r.validated && r.width.Apex_analysis.Width.validated)
             reports)
      then exit 1
    end
  in
  let apps =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"APP" ~doc:"Applications to analyze (see `apex apps`).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Analyze all nine built-in applications.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the report as machine-readable JSON.")
  in
  let widths =
    Arg.(
      value & flag
      & info [ "widths" ]
          ~doc:
            "Print the per-node width table: every node whose proven width \
             is below its natural hardware width, with its demanded and \
             live bit masks.  (--json always includes the table.)")
  in
  let configs =
    Arg.(
      value & flag
      & info [ "configs" ]
          ~doc:
            "Run the configuration-space analysis instead: for the baseline \
             PE and each application's specialized PE, report realizability \
             of every registered config, unreachable resources with their \
             SAT classification, the mutual-exclusion gating facts, and the \
             validated-pruning proof ledger.  Exits 1 on an unrealizable \
             config or a reverted pruning.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static-analysis framework over application kernels: \
          report value-range / known-bits facts, the validated node-count \
          reduction the optimizer achieves (constant folding, identities, \
          CSE, dead-node elimination), and the SMT-validated per-node \
          widths the demanded-bits analysis proves.  With $(b,--configs), \
          report the SAT-backed configuration-space analysis of the merged \
          datapaths instead (reachability, mutual exclusion, validated \
          pruning).")
    Term.(
      const run $ exec_t $ trace_arg $ optimize_arg $ apps $ all $ json
      $ widths $ configs)

(* --- pe (show a variant) --- *)

let pe_cmd =
  let run () trace check optimize variant verilog dot =
    with_trace trace @@ fun () ->
    set_check check;
    set_optimize optimize;
    let v = Apex.Dse.variant_for variant in
    Format.printf "variant %s: area %.1f um^2, %d FUs, %d configs, %d rules@."
      v.name (D.area v.dp)
      (Array.fold_left
         (fun acc (n : D.node) ->
           match n.kind with D.Fu _ -> acc + 1 | _ -> acc)
         0 v.dp.nodes)
      (List.length v.dp.configs) (List.length v.rules);
    List.iter
      (fun p -> Format.printf "  merged: %s@." (Pattern.code p))
      v.patterns;
    if verilog then begin
      let spec = Apex_peak.Spec.of_datapath ~name:v.name v.dp in
      (* pipeline the PE the way the flow would before emitting RTL *)
      let plan = Apex_pipelining.Pe_pipeline.plan v.dp in
      let stages =
        if plan.stages > 1 then
          Apex_pipelining.Pe_pipeline.assign_stages v.dp
            ~period_ps:plan.period_ps ~stages:plan.stages
        else None
      in
      print_string (Apex_peak.Verilog.emit ?stages spec)
    end;
    if dot then print_string (D.to_dot ~name:(Apex_peak.Verilog.sanitize v.name) v.dp)
  in
  let verilog =
    Arg.(value & flag & info [ "verilog" ] ~doc:"Emit the PE's (pipelined) Verilog.")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit the merged datapath as Graphviz.")
  in
  Cmd.v
    (Cmd.info "pe" ~doc:"Generate and describe a PE variant.")
    Term.(
      const run $ exec_t $ trace_arg $ check_arg $ optimize_arg $ variant_arg
      $ verilog $ dot)

(* --- map --- *)

let map_cmd =
  let run () trace check optimize app variant =
    with_trace trace @@ fun () ->
    set_check check;
    set_optimize optimize;
    let a = app_by_name app in
    let v = Apex.Dse.variant_for variant in
    match Apex.Metrics.post_mapping v a with
    | pm, mapped ->
        Format.printf "%a@." Apex_mapper.Cover.pp_stats mapped;
        Format.printf
          "PE area %.1f um^2 -> total %.0f um^2; PE-core energy %.1f fJ/output@."
          pm.Apex.Metrics.pe_area pm.total_pe_area pm.pe_energy_per_output
    | exception Apex_mapper.Cover.Unmappable m ->
        Format.printf "unmappable: %s@." m;
        exit 1
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Map an application onto a PE variant (post-mapping).")
    Term.(
      const run $ exec_t $ trace_arg $ check_arg $ optimize_arg $ app_arg
      $ variant_arg)

(* --- evaluate --- *)

let evaluate_cmd =
  let run () trace check optimize app variant level effort =
    with_trace trace @@ fun () ->
    set_check check;
    set_optimize optimize;
    let a = app_by_name app in
    let v = Apex.Dse.variant_for variant in
    match level with
    | "mapping" ->
        let pm, _ = Apex.Metrics.post_mapping v a in
        Format.printf
          "post-mapping: #PEs %d, area/PE %.2f, total %.0f um^2, %.1f fJ/out, %.2f ops/PE@."
          pm.Apex.Metrics.n_pes pm.pe_area pm.total_pe_area
          pm.pe_energy_per_output pm.utilization
    | "pnr" ->
        let pnr, _ = Apex.Metrics.post_pnr ~effort v a in
        Format.printf
          "post-PnR: total %.0f um^2 (SB %.0f, CB %.0f, MEM %.0f), %.1f fJ/out, %d routing tiles@."
          pnr.Apex.Metrics.total_area pnr.sb_area pnr.cb_area pnr.mem_area
          pnr.total_energy_per_output pnr.routing_tiles
    | "pipeline" ->
        let pp = Apex.Metrics.post_pipelining ~effort v a in
        Format.printf
          "post-pipelining: %d PE stages @ %.0f ps, %d regs + %d RFs, %d cycles/run, %.3f ms, %.2f runs/ms/mm^2@."
          pp.Apex.Metrics.pe_stages pp.period_ps pp.n_regs pp.n_reg_files
          pp.cycles_per_run pp.runtime_ms pp.perf_per_mm2
    | other ->
        Format.printf "unknown level %s (mapping|pnr|pipeline)@." other;
        exit 1
  in
  let level =
    Arg.(value & opt string "mapping"
         & info [ "level"; "l" ] ~doc:"mapping, pnr or pipeline.")
  in
  let effort =
    Arg.(value & opt int 1 & info [ "effort" ] ~doc:"Placement effort (0 = greedy).")
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Evaluate an application on a PE variant.")
    Term.(
      const run $ exec_t $ trace_arg $ check_arg $ optimize_arg $ app_arg
      $ variant_arg $ level $ effort)

(* --- verify (rewrite rules) --- *)

let verify_cmd =
  let run () trace variant =
    with_trace trace @@ fun () ->
    let v = Apex.Dse.variant_for variant in
    Format.printf "verifying the %d rewrite rules of %s:@."
      (List.length v.rules) v.name;
    List.iter
      (fun (r : Apex_mapper.Rules.t) ->
        let verdict =
          Apex_verif.Verify.verify_config v.dp r.config r.pattern
        in
        Format.printf "  %-40s %a@." r.config.D.label Apex_verif.Verify.pp_verdict
          verdict)
      v.rules
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Re-verify every rewrite rule of a variant with the SAT engine.")
    Term.(const run $ exec_t $ trace_arg $ variant_arg)

(* --- compile: the whole back end with bitstream and simulation --- *)

let compile_cmd =
  let run () trace check optimize app variant sim_frames emit_fabric =
    with_trace trace @@ fun () ->
    set_check check;
    set_optimize optimize;
    (* the optimized kernel is what gets mapped AND what the golden
       simulation replays (identity when --optimize is off) *)
    let a = Apex.Optimize.app (app_by_name app) in
    let v = Apex.Dse.variant_for variant in
    let spec = Apex_peak.Spec.of_datapath ~name:v.name v.dp in
    let mapped = Apex_mapper.Cover.map_app ~rules:v.rules a.graph in
    let fabric = Apex_cgra.Fabric.create () in
    let placement = Apex_cgra.Place.place fabric mapped in
    let routes = Apex_cgra.Route.route placement mapped in
    let plan =
      Apex_pipelining.App_pipeline.balance mapped
        ~pe_latency:(Apex_pipelining.Pe_pipeline.plan v.dp).stages
    in
    let bitstream = Apex_cgra.Bitstream.generate spec placement mapped routes in
    Format.printf
      "compiled %s on %s:@.  %d PEs placed on a %dx%d fabric (HPWL %.0f)@.         %d nets, %d word hops, %d rip-up rounds, overuse %d@.  pipeline:        latency %d, depth %d cycles, %d regs + %d register files@.         bitstream: %d bits@."
      app v.name
      (Apex_mapper.Cover.n_pes mapped)
      fabric.Apex_cgra.Fabric.width fabric.Apex_cgra.Fabric.height
      placement.Apex_cgra.Place.wirelength
      (List.length routes.Apex_cgra.Route.nets)
      routes.word_hops routes.iterations routes.overuse plan.pe_latency
      plan.depth_cycles plan.n_regs plan.n_reg_files bitstream.total_bits;
    if sim_frames > 0 then begin
      let st = Random.State.make [| 7 |] in
      let frames =
        List.init sim_frames (fun _ -> Apex_dfg.Interp.random_env st a.graph)
      in
      let report =
        Apex_cgra.Sim.run ~spec ~mapped ~plan ~bitstream ~placement ~frames
      in
      let ok =
        List.for_all2
          (fun frame out ->
            List.sort compare (Apex_dfg.Interp.run a.graph frame)
            = List.sort compare out)
          frames report.outputs
      in
      Format.printf "  simulation: %d frames vs golden model -> %s@."
        sim_frames
        (if ok then "MATCH" else "MISMATCH");
      if not ok then exit 1
    end;
    if emit_fabric then print_string (Apex_cgra.Verilog_top.emit fabric spec)
  in
  let sim =
    Arg.(value & opt int 0
         & info [ "sim" ] ~doc:"Simulate N random frames against the golden model.")
  in
  let emit_fabric =
    Arg.(value & flag & info [ "fabric-verilog" ] ~doc:"Emit the full CGRA Verilog.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Map, place, route and generate the bitstream for an application.")
    Term.(
      const run $ exec_t $ trace_arg $ check_arg $ optimize_arg $ app_arg
      $ variant_arg $ sim $ emit_fabric)

(* --- profile: the full DSE flow with telemetry always on --- *)

let profile_cmd =
  let profile_app variant (a : Apps.t) =
    let vspec =
      match variant with Some v -> v | None -> "spec:" ^ a.Apps.name
    in
    let ranked = Apex.Variants.analysis_of a in
    let v = Apex.Dse.variant_for vspec in
    (* compare against the single-op PE 1 baseline; when [vspec] is the
       default spec:<app>, the variant search already built it, so this
       is a memo hit *)
    let reference = Apex.Dse.pe_k a 0 in
    let pp, pp_ref =
      match Apex.Dse.evaluate_pairs [ (v, a); (reference, a) ] with
      | [ pp; pp_ref ] -> (pp, pp_ref)
      | _ -> assert false
    in
    Format.printf "profile %s on %s: %d mined subgraphs, %d rules@." a.Apps.name
      v.name (List.length ranked) (List.length v.rules);
    (match (Apex.Dse.mapped_opt pp, Apex.Dse.mapped_opt pp_ref) with
    | Some pp, Some pr ->
        Format.printf
          "  %.2f runs/ms/mm^2 vs %.2f on %s (%.2fx); %d PEs, %d cycles/run@."
          pp.Apex.Metrics.perf_per_mm2 pr.Apex.Metrics.perf_per_mm2
          reference.name
          (pp.Apex.Metrics.perf_per_mm2
          /. Float.max 1e-9 pr.Apex.Metrics.perf_per_mm2)
          pp.pnr.pm.n_pes pp.cycles_per_run
    | Some pp, None ->
        Format.printf "  %.2f runs/ms/mm^2; %d PEs, %d cycles/run@."
          pp.Apex.Metrics.perf_per_mm2 pp.pnr.pm.n_pes pp.cycles_per_run
    | None, _ ->
        Format.printf "  %s on %s@." (Apex.Dse.pair_status pp) v.name);
    (* machine-readable record of what the run *computed*, as opposed
       to how it ran — `apex report-diff --results-only` compares
       exactly this section across cold/warm cache runs, whose counter
       and span sections legitimately differ *)
    let pp_fields r =
      let status = ("status", Json.String (Apex.Dse.pair_status r)) in
      match Apex.Dse.mapped_opt r with
      | None -> [ status; ("mappable", Json.Bool false) ]
      | Some (pp : Apex.Metrics.post_pipelining) ->
          [ status;
            ("mappable", Json.Bool true);
            ("n_pes", Json.Int pp.pnr.pm.n_pes);
            ("cycles_per_run", Json.Int pp.cycles_per_run);
            ("pe_stages", Json.Int pp.pe_stages);
            ("period_ps", Json.Float pp.period_ps);
            ("total_area", Json.Float pp.pnr.total_area);
            ("perf_per_mm2", Json.Float pp.perf_per_mm2) ]
    in
    Json.Obj
      [ ("app", Json.String a.Apps.name);
        ("variant", Json.String v.name);
        ("mined_subgraphs", Json.Int (List.length ranked));
        ("rules", Json.Int (List.length v.rules));
        ("result", Json.Obj (pp_fields pp));
        ("reference", Json.Obj (pp_fields pp_ref)) ]
  in
  let run () trace check optimize apps all variant chrome =
    set_check check;
    set_optimize optimize;
    let apps =
      if all then Apps.evaluated ()
      else if apps = [] then
        invalid_arg "profile: name at least one application, or pass --all"
      else List.map app_by_name apps
    in
    (* profile implies tracing: the whole point is the report *)
    Registry.enable ();
    Registry.reset ();
    if chrome <> None then Registry.set_events true;
    let results = Json.List (List.map (profile_app variant) apps) in
    let snap = Registry.snapshot () in
    Format.printf "@.%a" Report.pp snap;
    (match chrome with
    | None -> ()
    | Some path -> (
        let events = Registry.events () in
        Registry.set_events false;
        (match Apex_telemetry.Chrome.write_file path events with
        | () ->
            Format.eprintf "telemetry: Chrome trace (%d events) written to %s@."
              (List.length events) path
        | exception Sys_error m ->
            Format.eprintf "telemetry: cannot write Chrome trace: %s@." m);
        match Registry.events_dropped () with
        | 0 -> ()
        | n ->
            Format.eprintf
              "telemetry: %d span events dropped (per-run event cap)@." n));
    match trace_report_path trace with
    | None -> ()
    | Some path -> (
        match Report.write_file ~results path snap with
        | () -> Format.eprintf "telemetry: JSON report written to %s@." path
        | exception Sys_error m ->
            Format.eprintf "telemetry: cannot write JSON report: %s@." m)
  in
  let apps =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"APP" ~doc:"Applications to profile (see `apex apps`).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Profile all six evaluated applications (Table 1).")
  in
  let variant =
    let doc = "PE variant to profile (default: spec:<app>)." in
    Arg.(
      value
      & opt (some string) None
      & info [ "variant"; "v" ] ~docv:"VARIANT" ~doc)
  in
  let chrome =
    let doc =
      "Also record one trace event per span occurrence and write them as a \
       Chrome trace-event (catapult) JSON file to $(docv); load it in \
       about://tracing or Perfetto. Spans run on pool worker domains land \
       on their own timeline rows (tid = domain id), so a --jobs 4 run \
       renders as a parallel timeline."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run mining, variant search, mapping, PnR and pipelining for one or \
          more applications with telemetry enabled, then print the span tree \
          and counter tables (and write the JSON report — including a \
          per-application results section — with --trace=FILE or APEX_TRACE).")
    Term.(
      const run $ exec_t $ trace_arg $ check_arg $ optimize_arg $ apps $ all
      $ variant $ chrome)

(* --- dse: the (variant x application) evaluation fleet --- *)

let dse_cmd =
  let row_json = Apex.Jobs.dse_row_json in
  let run () trace check optimize apps all variants json resume =
    set_check check;
    set_optimize optimize;
    if resume && not (Apex_exec.Store.enabled ()) then
      invalid_arg
        "dse: --resume resumes from per-pair checkpoints in the artifact \
         cache; drop --no-cache";
    let apps =
      if all then Apps.evaluated ()
      else if apps = [] then
        invalid_arg "dse: name at least one application, or pass --all"
      else List.map app_by_name apps
    in
    (* the fleet is the whole point: telemetry is always on, so the
       degradation outcome counters land in the report *)
    Registry.enable ();
    Registry.reset ();
    (* variant construction is serial (shared memo tables); one
       construction failure is a configuration error and aborts, unlike
       per-pair evaluation failures below, which never do *)
    let pairs = Apex.Jobs.dse_pairs ~apps ~variants in
    let results =
      Apex.Dse.evaluate_pairs (List.map (fun (_, v, a) -> (v, a)) pairs)
    in
    let rows = List.combine pairs results in
    let count status =
      List.length
        (List.filter (fun (_, r) -> Apex.Dse.pair_status r = status) rows)
    in
    if json then
      print_endline (Json.to_string (Json.List (List.map row_json rows)))
    else begin
      List.iter
        (fun ((_, (v : Apex.Variants.t), (a : Apps.t)), r) ->
          match Apex.Dse.mapped_opt r with
          | Some (pp : Apex.Metrics.post_pipelining) ->
              Format.printf
                "dse %-10s on %-12s %8.2f runs/ms/mm^2  %3d PEs  %5d \
                 cycles/run@."
                a.Apps.name v.name pp.Apex.Metrics.perf_per_mm2 pp.pnr.pm.n_pes
                pp.cycles_per_run
          | None ->
              Format.printf "dse %-10s on %-12s %s@." a.Apps.name v.name
                (Apex.Dse.pair_status r))
        rows;
      Format.printf
        "dse: %d pairs — %d mapped, %d unmappable, %d skipped, %d failed@."
        (List.length rows) (count "mapped") (count "unmappable")
        (count "skipped") (count "failed")
    end;
    if resume then
      Format.eprintf
        "dse: resumed %d/%d pairs from checkpoints, %d evaluated and newly \
         checkpointed@."
        (Apex_telemetry.Counter.get "dse.pairs_resumed")
        (List.length rows)
        (Apex_telemetry.Counter.get "dse.pairs_checkpointed");
    let snap = Registry.snapshot () in
    if trace <> None then Format.printf "@.%a" Report.pp snap;
    match trace_report_path trace with
    | None -> ()
    | Some path -> (
        match
          Report.write_file ~results:(Json.List (List.map row_json rows)) path
            snap
        with
        | () -> Format.eprintf "telemetry: JSON report written to %s@." path
        | exception Sys_error m ->
            Format.eprintf "telemetry: cannot write JSON report: %s@." m)
  in
  let apps =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"APP" ~doc:"Applications to evaluate (see `apex apps`).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Evaluate all six evaluated applications (Table 1).")
  in
  let variants =
    let doc =
      "PE variant to include in the fleet (repeatable; default: base and \
       spec:<app> per application)."
    in
    Arg.(value & opt_all string [] & info [ "variant"; "v" ] ~docv:"VARIANT" ~doc)
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the per-pair results as JSON.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume an interrupted run from per-pair checkpoints: every \
             pair whose evaluation completed before the interruption (each \
             one is recorded through the artifact store as it finishes) is \
             restored instead of recomputed, and a summary of \
             resumed-vs-evaluated counts is printed. Results are \
             byte-identical to an uninterrupted run. Requires the cache \
             (conflicts with --no-cache).")
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Evaluate a fleet of (variant, application) pairs — mapping, PnR, \
          pipelining — under the resource governor. Per-pair failures are \
          isolated (skipped/failed status per pair, exit 0 for the fleet); \
          deadlines and injected faults degrade phases to their documented \
          fallbacks, flagged as guard.outcome.* in the telemetry report.")
    Term.(
      const run $ exec_t $ trace_arg $ check_arg $ optimize_arg $ apps $ all
      $ variants $ json $ resume)

(* --- lint: run the checker registry over the flow's artifacts --- *)

let lint_cmd =
  let parse_codes flag = function
    | None -> []
    | Some s ->
        let codes =
          String.split_on_char ',' s
          |> List.map String.trim
          |> List.filter (fun c -> c <> "")
        in
        if codes = [] then
          invalid_arg (Printf.sprintf "lint: %s needs at least one code" flag);
        List.iter
          (fun c ->
            match Apex_lint.Engine.validate_code c with
            | Ok () -> ()
            | Error msg -> invalid_arg (Printf.sprintf "lint: %s: %s" flag msg))
          codes;
        codes
  in
  let list_codes json =
    let module D = Apex_lint.Diagnostic in
    if json then
      print_endline
        (Json.to_string
           (Json.List
              (List.map
                 (fun (i : D.info) ->
                   Json.Obj
                     [ ("code", Json.String i.D.code_info);
                       ("layer", Json.String i.D.layer);
                       ( "severity",
                         Json.String (D.severity_string i.D.default_severity) );
                       ("invariant", Json.String i.D.invariant) ])
                 D.catalog)))
    else
      List.iter
        (fun (i : D.info) ->
          Format.printf "%-8s %-8s %-12s %s@." i.D.code_info
            (D.severity_string i.D.default_severity)
            i.D.layer i.D.invariant)
        D.catalog
  in
  let run () trace optimize apps all json werror only except codes =
    with_trace trace @@ fun () ->
    if codes then begin
      list_codes json;
      exit 0
    end;
    set_optimize optimize;
    let only = parse_codes "--only" only
    and except = parse_codes "--except" except in
    let apps =
      if all then Apex.Lint_run.all_apps ()
      else if apps = [] then
        invalid_arg "lint: name at least one application, or pass --all"
      else List.map app_by_name apps
    in
    let report =
      Apex_lint.Engine.filter_report ~only ~except (Apex.Lint_run.run apps)
    in
    if json then
      print_endline (Json.to_string (Apex_lint.Engine.report_to_json report))
    else Format.printf "%a" Apex_lint.Engine.pp_report report;
    exit (Apex_lint.Engine.exit_code ~werror report)
  in
  let apps =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"APP" ~doc:"Applications to lint (see `apex apps`).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Lint all nine built-in applications.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the report as machine-readable JSON.")
  in
  let werror =
    Arg.(
      value & flag
      & info [ "werror" ] ~doc:"Exit non-zero on warnings, not just errors.")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"CODES"
          ~doc:
            "Comma-separated diagnostic codes to keep (e.g. \
             $(b,APX101,APX11x)); a trailing $(b,x) is a family wildcard. \
             Codes are validated against the catalog.")
  in
  let except =
    Arg.(
      value
      & opt (some string) None
      & info [ "except" ] ~docv:"CODES"
          ~doc:
            "Comma-separated diagnostic codes to drop (same syntax as \
             $(b,--only); applied after it).")
  in
  let codes =
    Arg.(
      value & flag
      & info [ "list-codes" ]
          ~doc:
            "Print every registered APX diagnostic code — default severity, \
             owning layer, and the invariant it protects — and exit.  \
             Combines with $(b,--json); needs no application names.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Check every artifact the flow produces for an application — DFG, \
          mined patterns, merged datapath, rewrite rules, pipeline plans — \
          against the APX invariant catalog (see DESIGN.md).  \
          $(b,--list-codes) prints the catalog itself.")
    Term.(
      const run $ exec_t $ trace_arg $ optimize_arg $ apps $ all $ json
      $ werror $ only $ except $ codes)

(* --- trace-check: validate a JSON telemetry report (used by `make ci`) --- *)

let trace_check_cmd =
  let run file requires forbids =
    let fail fmt =
      Format.kasprintf
        (fun m ->
          Format.printf "trace-check: %s: %s@." file m;
          exit 1)
        fmt
    in
    let contents =
      match
        let ic = open_in_bin file in
        Fun.protect
          (fun () -> really_input_string ic (in_channel_length ic))
          ~finally:(fun () -> close_in ic)
      with
      | s -> s
      | exception Sys_error m -> fail "%s" m
    in
    let json =
      match Json.of_string contents with
      | Ok j -> j
      | Error m -> fail "invalid JSON: %s" m
    in
    let schema =
      match Option.bind (Json.member "schema" json) Json.to_string_opt with
      | Some s -> s
      | None -> fail "missing \"schema\" field"
    in
    (* a bench report wraps one run report per case; a run report is
       checked directly *)
    let reports =
      if schema = Report.schema_version then [ ("run", json) ]
      else if schema = Report.bench_schema_version then
        match Option.bind (Json.member "cases" json) Json.to_list_opt with
        | Some (_ :: _ as cases) ->
            List.map
              (fun case ->
                let name =
                  Option.bind (Json.member "name" case) Json.to_string_opt
                  |> Option.value ~default:"?"
                in
                match Json.member "report" case with
                | Some r -> (name, r)
                | None -> fail "case %s has no \"report\"" name)
              cases
        | _ -> fail "bench report has no cases"
      else fail "unknown schema %S" schema
    in
    let check (label, report) =
      let counters =
        match Json.member "counters" report with
        | Some (Json.Obj fields) -> fields
        | _ -> fail "%s: missing counters object" label
      in
      if counters = [] then fail "%s: empty counters object" label;
      if Json.member "spans" report = None then
        fail "%s: missing spans object" label;
      List.iter
        (fun name ->
          match Option.bind (List.assoc_opt name counters) Json.to_int_opt with
          | Some n when n > 0 -> ()
          | Some _ -> fail "%s: counter %s is zero" label name
          | None -> fail "%s: counter %s is missing" label name)
        requires;
      List.iter
        (fun name ->
          match Option.bind (List.assoc_opt name counters) Json.to_int_opt with
          | Some n when n > 0 ->
              fail "%s: counter %s is %d (forbidden non-zero)" label name n
          | Some _ | None -> ())
        forbids
    in
    List.iter check reports;
    Format.printf
      "trace-check: %s: ok (%d report%s, %d required, %d forbidden counters)@."
      file (List.length reports)
      (if List.length reports = 1 then "" else "s")
      (List.length requires) (List.length forbids)
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSON telemetry report to validate.")
  in
  let requires =
    Arg.(
      value
      & opt_all string []
      & info [ "require" ] ~docv:"COUNTER"
          ~doc:"Fail unless $(docv) is present and non-zero (repeatable).")
  in
  let forbids =
    Arg.(
      value
      & opt_all string []
      & info [ "forbid" ] ~docv:"COUNTER"
          ~doc:
            "Fail if $(docv) is present with a non-zero value (repeatable); \
             absent or zero passes — e.g. a fully warm cached run must show \
             no $(b,exec.cache_misses).")
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a telemetry JSON report written by --trace or bench.")
    Term.(const run $ file $ requires $ forbids)

(* --- cache: inspect and prune the on-disk artifact store --- *)

let cache_cmd =
  let stats_cmd =
    let run () =
      let stats = Apex_exec.Store.stats () in
      Format.printf "cache %s@." (Apex_exec.Store.cache_dir ());
      if stats = [] then Format.printf "  (empty)@."
      else begin
        Format.printf "  %-12s %8s %12s@." "namespace" "entries" "bytes";
        List.iter
          (fun (s : Apex_exec.Store.ns_stats) ->
            Format.printf "  %-12s %8d %12d@." s.ns s.entries s.bytes)
          stats;
        let entries, bytes =
          List.fold_left
            (fun (e, b) (s : Apex_exec.Store.ns_stats) ->
              (e + s.entries, b + s.bytes))
            (0, 0) stats
        in
        Format.printf "  %-12s %8d %12d@." "total" entries bytes
      end
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Per-namespace entry counts and sizes.")
      Term.(const run $ const ())
  in
  let gc_cmd =
    let run budget_mb max_bytes ns =
      let budget_bytes =
        match max_bytes with
        | Some b when b >= 0 -> b
        | Some b -> invalid_arg (Printf.sprintf "--max-bytes %d: negative" b)
        | None -> budget_mb * 1024 * 1024
      in
      let deleted, freed =
        match ns with
        | Some ns -> Apex_exec.Store.gc_ns ~ns ~budget_bytes ()
        | None -> Apex_exec.Store.gc ~budget_bytes ()
      in
      Format.printf
        "cache gc%s: %d entries deleted, %d bytes freed (budget %d bytes)@."
        (match ns with Some ns -> " [" ^ ns ^ "]" | None -> "")
        deleted freed budget_bytes
    in
    let budget =
      Arg.(
        value & opt int 0
        & info [ "budget-mb" ] ~docv:"MIB"
            ~doc:
              "Keep the newest entries up to $(docv) mebibytes; delete the \
               rest (default 0: delete everything).")
    in
    let max_bytes =
      Arg.(
        value & opt (some int) None
        & info [ "max-bytes" ] ~docv:"BYTES"
            ~doc:
              "Exact byte budget (overrides $(b,--budget-mb)): keep the \
               newest entries up to $(docv) bytes, delete the rest.")
    in
    let ns =
      Arg.(
        value & opt (some string) None
        & info [ "ns" ] ~docv:"NS"
            ~doc:
              "Confine eviction to one namespace (as listed by `apex cache \
               stats`); other namespaces are untouched.")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Delete oldest cache entries until the store fits a size budget.")
      Term.(const run $ budget $ max_bytes $ ns)
  in
  let scrub_cmd =
    let run ns strict =
      let stats = Apex_exec.Store.scrub ?ns () in
      Format.printf "cache scrub %s@." (Apex_exec.Store.cache_dir ());
      if stats = [] then Format.printf "  (no entries)@."
      else begin
        Format.printf "  %-12s %8s %8s %8s %8s %12s@." "namespace" "checked"
          "ok" "corrupt" "stale" "quarantined";
        List.iter
          (fun (s : Apex_exec.Store.scrub_stats) ->
            Format.printf "  %-12s %8d %8d %8d %8d %10d B@." s.scrub_ns
              s.checked s.ok s.corrupt s.stale s.quarantined_bytes)
          stats
      end;
      let corrupt =
        List.fold_left
          (fun acc (s : Apex_exec.Store.scrub_stats) -> acc + s.corrupt)
          0 stats
      in
      if corrupt > 0 then begin
        Format.printf
          "cache scrub: %d corrupt entr%s quarantined under %s@." corrupt
          (if corrupt = 1 then "y" else "ies")
          (Filename.concat (Apex_exec.Store.cache_dir ()) "quarantine");
        if strict then exit 1
      end
    in
    let ns =
      Arg.(
        value & opt (some string) None
        & info [ "ns" ] ~docv:"NS"
            ~doc:
              "Confine the audit to one namespace (as listed by `apex \
               cache stats`).")
    in
    let strict =
      Arg.(
        value & flag
        & info [ "strict" ]
            ~doc:"Exit 1 when any corrupt entry is found (CI gating).")
    in
    Cmd.v
      (Cmd.info "scrub"
         ~doc:
           "Integrity audit: re-verify every entry's payload digest. \
            Corrupt entries are quarantined (moved under \
            $(i,cache)/quarantine/, never silently deleted) and counted; \
            stale-format entries are counted and left for gc.")
      Term.(const run $ ns $ strict)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Manage the content-addressed artifact cache (APEX_CACHE_DIR, \
          default ~/.cache/apex).")
    [ stats_cmd; gc_cmd; scrub_cmd ]

(* --- report-diff: compare two telemetry reports modulo timing (the CI
   determinism guard: --jobs N and cached runs must not change what the
   flow computes) --- *)

let report_diff_cmd =
  let run a_file b_file results_only =
    let fail fmt =
      Format.kasprintf
        (fun m ->
          Format.printf "report-diff: %s@." m;
          exit 2)
        fmt
    in
    let load file =
      let contents =
        match
          let ic = open_in_bin file in
          Fun.protect
            (fun () -> really_input_string ic (in_channel_length ic))
            ~finally:(fun () -> close_in ic)
        with
        | s -> s
        | exception Sys_error m -> fail "%s" m
      in
      match Json.of_string contents with
      | Ok j -> j
      | Error m -> fail "%s: invalid JSON: %s" file m
    in
    (* normalization: drop wall-clock and GC fields everywhere (both
       are measurements of *how* the run went, not *what* it computed),
       drop timing distributions (the `_ms` naming convention), and
       drop the runtime's own exec.* metrics — worker/cache bookkeeping
       is *expected* to differ across --jobs and cache configurations *)
    let exec_metric (k, _) = String.length k >= 5 && String.sub k 0 5 = "exec." in
    let timing_dist (k, _) = String.ends_with ~suffix:"_ms" k in
    let rec normalize = function
      | Json.Obj fields ->
          Json.Obj
            (List.filter_map
               (fun (k, v) ->
                 match (k, v) with
                 | "total_ms", _ -> None
                 | "gc", _ -> None
                 | ("counters" | "gauges"), Json.Obj fs ->
                     Some
                       ( k,
                         Json.Obj
                           (List.filter (fun f -> not (exec_metric f)) fs
                           |> List.map (fun (k2, v2) -> (k2, normalize v2))) )
                 | "distributions", Json.Obj fs ->
                     Some
                       ( k,
                         Json.Obj
                           (List.filter
                              (fun f ->
                                not (exec_metric f) && not (timing_dist f))
                              fs
                           |> List.map (fun (k2, v2) -> (k2, normalize v2))) )
                 | _ -> Some (k, normalize v))
               fields)
      | Json.List l -> Json.List (List.map normalize l)
      | j -> j
    in
    let project file j =
      if not results_only then normalize j
      else
        match Json.member "results" j with
        | Some r -> r
        | None -> fail "%s has no \"results\" section" file
    in
    let a = project a_file (load a_file) in
    let b = project b_file (load b_file) in
    if Json.to_string a = Json.to_string b then begin
      Format.printf "report-diff: %s and %s agree%s@." a_file b_file
        (if results_only then " (results)" else " (modulo timing)");
      exit 0
    end
    else begin
      Format.printf "report-diff: %s and %s DIFFER%s@." a_file b_file
        (if results_only then " (results)" else " (modulo timing)");
      exit 1
    end
  in
  let a_file =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"A" ~doc:"First JSON telemetry report.")
  in
  let b_file =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"B" ~doc:"Second JSON telemetry report.")
  in
  let results_only =
    Arg.(
      value & flag
      & info [ "results-only" ]
          ~doc:
            "Compare only the reports' \"results\" sections (for cold- vs \
             warm-cache runs, whose counters and spans legitimately differ).")
  in
  Cmd.v
    (Cmd.info "report-diff"
       ~doc:
         "Compare two telemetry JSON reports modulo timing fields and \
          runtime (exec.*) metrics; exit 0 when they agree, 1 when they \
          differ.")
    Term.(const run $ a_file $ b_file $ results_only)

(* --- bench-diff: the benchmark-trajectory regression gate (used by
   `make ci` against the committed BENCH_<area>.json baselines) --- *)

let bench_diff_cmd =
  let run old_file new_file tolerance =
    let fail fmt =
      Format.kasprintf
        (fun m ->
          Format.printf "bench-diff: %s@." m;
          exit 2)
        fmt
    in
    if tolerance < 0 then
      fail "--tolerance: %d is negative (band count expected)" tolerance;
    let load file =
      let contents =
        match
          let ic = open_in_bin file in
          Fun.protect
            (fun () -> really_input_string ic (in_channel_length ic))
            ~finally:(fun () -> close_in ic)
        with
        | s -> s
        | exception Sys_error m -> fail "%s" m
      in
      match Json.of_string contents with
      | Ok j -> j
      | Error m -> fail "%s: invalid JSON: %s" file m
    in
    let old_j = load old_file in
    let new_j = load new_file in
    match Apex.Snapshot.diff ~tolerance old_j new_j with
    | [] ->
        Format.printf
          "bench-diff: %s and %s agree (exact counters, time bands within \
           %d)@."
          old_file new_file tolerance;
        exit 0
    | errs ->
        Format.printf "bench-diff: %s vs %s: %d regression finding%s@."
          old_file new_file (List.length errs)
          (if List.length errs = 1 then "" else "s");
        List.iter (fun e -> Format.printf "  %s@." e) errs;
        exit 1
  in
  let old_file =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"Baseline snapshot (BENCH_<area>.json).")
  in
  let new_file =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Freshly generated snapshot to gate.")
  in
  let tolerance =
    Arg.(
      value & opt int 1
      & info [ "tolerance" ] ~docv:"BANDS"
          ~doc:
            "Allowed time-band drift per phase (bands are factor-of-4 wide; \
             default 1). Exact counters never tolerate drift.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two benchmark snapshots written by `bench --snapshot`: \
          exit 1 on any exact-counter drift or a wall-clock band excursion \
          beyond --tolerance, 0 when the trajectory holds.")
    Term.(const run $ old_file $ new_file $ tolerance)

(* --- serve / submit: the multi-tenant job daemon and its client --- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix domain socket path the daemon listens on.")

let serve_cmd =
  let run trace socket jobs max_queue deadline quota_mb journal =
    with_trace trace @@ fun () ->
    let config =
      { Apex_serve.Server.socket_path = socket;
        jobs;
        max_queue;
        default_deadline_s = deadline;
        tenant_quota_bytes = Option.map (fun mb -> mb * 1024 * 1024) quota_mb;
        journal_path = journal }
    in
    let t = Apex_serve.Server.start config in
    let stop _ = Apex_serve.Server.request_stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Format.printf "apex serve: listening on %s (%d jobs, queue depth %d)@."
      socket jobs max_queue;
    Format.print_flush ();
    Apex_serve.Server.join t;
    Format.printf "apex serve: shut down@."
  in
  let jobs =
    Arg.(
      value & opt int 4
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Scheduler batch width: how many admitted requests are in \
             flight at once. Each request runs serially (the request is \
             the unit of parallelism).")
  in
  let max_queue =
    Arg.(
      value & opt int 16
      & info [ "max-queue" ] ~docv:"D"
          ~doc:
            "Admission cap: requests queued beyond $(docv) get a typed \
             over-capacity reject instead of waiting.")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:
            "Per-request deadline cap in seconds (the effective deadline is \
             the smaller of this and the request's own deadline_s). Queue \
             wait counts against it.")
  in
  let quota_mb =
    Arg.(
      value & opt (some int) None
      & info [ "tenant-quota-mb" ] ~docv:"MIB"
          ~doc:
            "Per-tenant artifact-cache byte quota: after every request the \
             tenant's namespaces are trimmed oldest-first to $(docv) \
             mebibytes.")
  in
  let journal =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead job journal: every admission is fsynced to \
             $(docv) before it enters the queue, and on startup \
             unfinished jobs from a previous incarnation (e.g. after \
             kill -9) are replayed ahead of new submissions.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant job daemon: \
          DSE/analyze/configspace/lint/map/mine jobs \
          as length-prefixed JSON over a Unix domain socket, with admission \
          control, per-tenant cache namespaces and per-request isolation. \
          SIGTERM/SIGINT shut down gracefully (queued requests are answered \
          cancelled, in-flight ones degrade via their guard outcomes). With \
          --trace=FILE the daemon writes its own serve.* telemetry report \
          on shutdown.")
    Term.(const run $ trace_arg $ socket_arg $ jobs $ max_queue $ deadline
          $ quota_mb $ journal)

let submit_cmd =
  let run socket tenant deadline out json_flag job_strs =
    let jobs =
      List.map
        (fun s ->
          match Json.of_string s with
          | Ok j -> Apex.Jobs.of_json j
          | Error m ->
              invalid_arg (Printf.sprintf "submit: job %S: invalid JSON: %s" s m))
        job_strs
    in
    if jobs = [] then invalid_arg "submit: provide at least one job spec";
    let c = Apex_serve.Client.connect socket in
    Fun.protect ~finally:(fun () -> Apex_serve.Client.close c) @@ fun () ->
    let exit_code = ref 0 in
    List.iteri
      (fun i job ->
        let resp =
          Apex_serve.Client.request c
            { Apex_serve.Proto.tenant; job; deadline_s = deadline }
        in
        match resp with
        | Apex_serve.Proto.Ok report ->
            (match out with
            | Some path ->
                (* several jobs sharing --out: the last report wins *)
                let oc = open_out path in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () -> output_string oc (Json.to_string report))
            | None -> ());
            if json_flag then
              print_endline
                (Json.to_string
                   (Option.value ~default:Json.Null
                      (Json.member "results" report)))
            else
              Format.printf "submit[%d]: %s ok (tenant %s)@." i
                (Apex.Jobs.kind job) tenant
        | Apex_serve.Proto.Error e ->
            if json_flag then
              print_endline (Json.to_string (Apex_serve.Proto.error_to_json e))
            else Format.eprintf "submit[%d]: %s: %s@." i e.kind e.message;
            if !exit_code = 0 then exit_code := e.code)
      jobs;
    if !exit_code <> 0 then exit !exit_code
  in
  let tenant =
    Arg.(
      value & opt string "default"
      & info [ "tenant"; "t" ] ~docv:"NAME"
          ~doc:
            "Tenant namespace ([A-Za-z0-9_-]): requests of one tenant share \
             warm cache artifacts; tenants never see each other's.")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:"Request deadline in seconds, queue wait included.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write the response's embedded telemetry report (results \
             section included) to $(docv) — the same apex.telemetry/1 \
             schema --trace=FILE writes, so `apex trace-check` and `apex \
             report-diff` consume it directly.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the results section (or the error object) as JSON.")
  in
  let job_specs =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"JOB"
          ~doc:
            "Job spec as JSON, e.g. '{\"kind\":\"dse\",\"apps\":[\"camera\"]}' \
             (kinds: dse, analyze, configspace, lint, map, mine, sleep). \
             Repeatable; jobs \
             run sequentially on one connection.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit jobs to a running `apex serve` daemon and wait for the \
          results. Exits with the server error's code on failure (the same \
          five-way map the CLI uses).")
    Term.(
      const run $ socket_arg $ tenant $ deadline $ out $ json_flag $ job_specs)

(* --- chaos: run a flow under a seeded multi-shot fault schedule and
   check the results-identical-or-degraded contract --- *)

let chaos_cmd =
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  let run app seed faults json =
    if faults < 1 then invalid_arg "chaos: --faults must be at least 1";
    ignore (app_by_name app : Apps.t);
    Registry.enable ();
    (* serial, so the order in which fault sites are reached — and
       therefore which occurrence each shot hits — is deterministic;
       that plus the seeded schedule makes the whole report a pure
       function of (app, seed, faults) *)
    Apex_exec.Pool.set_jobs 1;
    let job = Apex.Jobs.Dse { apps = [ app ]; variants = [] } in
    let scratch tag =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "apex-chaos-%d-%s" (Unix.getpid ()) tag)
    in
    let base_dir = scratch "baseline" and chaos_dir = scratch "chaos" in
    (* both runs start cold in scratch caches: a warm hit would skip
       the very code paths the schedule is aimed at *)
    let run_flow cache =
      Apex_exec.Store.set_dir cache;
      Registry.reset ();
      match Apex.Jobs.run job with
      | results -> (results, Registry.snapshot (), None)
      | exception e ->
          (Json.Null, Registry.snapshot (),
           Some (Apex_serve.Proto.error_of_exn e))
    in
    Fun.protect ~finally:(fun () ->
        Apex_guard.Fault.disarm ();
        rm_rf base_dir;
        rm_rf chaos_dir)
    @@ fun () ->
    Apex_guard.Fault.disarm ();
    let base_results, _, base_err = run_flow base_dir in
    (match base_err with
    | Some (e : Apex_serve.Proto.error) ->
        invalid_arg
          (Printf.sprintf "chaos: fault-free baseline run failed (%s: %s)"
             e.kind e.message)
    | None -> ());
    Apex_guard.Fault.arm_seeded ~seed ~faults;
    let chaos_results, snap, chaos_err = run_flow chaos_dir in
    let schedule = Apex_guard.Fault.schedule () in
    let counters =
      match Json.member "counters" (Report.to_json snap) with
      | Some (Json.Obj fs) ->
          (* only deterministic counts: governance and flow counters,
             never timings — the --json report must be a pure function
             of (app, seed, faults) for the CI determinism check *)
          List.filter
            (fun (k, _) ->
              (String.starts_with ~prefix:"guard." k
              || String.starts_with ~prefix:"dse." k)
              && not (String.ends_with ~suffix:"_ms" k))
            fs
      | _ -> []
    in
    let cval k =
      match List.assoc_opt k counters with Some (Json.Int n) -> n | _ -> 0
    in
    let degraded_evidence =
      cval "guard.outcome.degraded" > 0
      || cval "guard.outcome.skipped" > 0
      || List.exists
           (fun (k, _) -> String.starts_with ~prefix:"guard.retries." k)
           counters
    in
    let identical =
      chaos_err = None
      && String.equal
           (Json.to_string base_results)
           (Json.to_string chaos_results)
    in
    let verdict, exit_code =
      match chaos_err with
      | Some e ->
          (* the fault escaped every recovery ladder but still exits
             through the typed map — that *is* the exit-code contract *)
          ("error:" ^ e.kind, e.code)
      | None ->
          if identical then ("identical", 0)
          else if degraded_evidence then ("degraded", 0)
          else
            (* different results with no recorded degradation would be
               a silent-corruption bug: fail loudly *)
            ("diverged", 2)
    in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [ ("schema", Json.String "apex.chaos/1");
                ("app", Json.String app);
                ("seed", Json.Int seed);
                ("faults", Json.Int faults);
                ( "schedule",
                  Json.List
                    (List.map
                       (fun (site, nth, fired) ->
                         Json.Obj
                           [ ("site", Json.String site);
                             ("nth", Json.Int nth);
                             ("fired", Json.Bool fired) ])
                       schedule) );
                ("verdict", Json.String verdict);
                ("exit_code", Json.Int exit_code);
                ("counters", Json.Obj counters) ]))
    else begin
      Format.printf "chaos %s: seed %d, %d shot%s@." app seed faults
        (if faults = 1 then "" else "s");
      List.iter
        (fun (site, nth, fired) ->
          Format.printf "  %-24s occurrence %d  %s@." site nth
            (if fired then "fired" else "not reached"))
        schedule;
      Format.printf "chaos %s: verdict %s (%d fault%s injected)@." app verdict
        (cval "guard.faults_injected")
        (if cval "guard.faults_injected" = 1 then "" else "s")
    end;
    if exit_code <> 0 then exit exit_code
  in
  let app_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"APP" ~doc:"Application to run the flow on.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Schedule seed: the shots are drawn from a deterministic \
             generator keyed on $(docv), so the same seed always injects \
             the same faults at the same occurrences.")
  in
  let faults =
    Arg.(
      value & opt int 3
      & info [ "faults" ] ~docv:"N"
          ~doc:"How many (site, occurrence) shots to draw (default 3).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the chaos report as JSON — deterministic for a given \
             (APP, --seed, --faults), which is what the CI determinism \
             check compares.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the DSE flow for one application twice — fault-free, then \
          under a seeded multi-shot fault schedule drawn over every \
          registered site — and check the crash-only contract: the faulted \
          run's results are byte-identical to the baseline or carry typed \
          degradation evidence (guard.outcome.*), and any escaped fault \
          exits through the five-way exit-code map. APEX_FAULT=seed:S:N is \
          the equivalent environment setting for any other subcommand.")
    Term.(const run $ app_arg $ seed $ faults $ json)

let main =
  let doc = "APEX: automated CGRA processing-element design-space exploration" in
  Cmd.group (Cmd.info "apex" ~version:"1.0.0" ~doc)
    [ apps_cmd; mine_cmd; analyze_cmd; pe_cmd; map_cmd; evaluate_cmd;
      verify_cmd; compile_cmd; profile_cmd; dse_cmd; lint_cmd;
      trace_check_cmd; cache_cmd; report_diff_cmd; bench_diff_cmd;
      serve_cmd; submit_cmd; chaos_cmd ]

let () =
  (* Error hygiene: every anticipated failure class gets a one-line
     structured error and its own exit code, never cmdliner's "internal
     error" banner or a backtrace.
       1  unmappable        the variant's rule set cannot cover the app
       2  invalid-argument  bad flag value, unknown app/variant, misuse
       3  io-error          filesystem trouble (reports, cache, inputs)
       4  cancelled         an uncaught budget cancellation
       5  fault-injected    an injected fault escaped every recovery
                            ladder (a guard bug by definition)
     When --json is anywhere on the command line the error is printed
     as a JSON object on stdout instead, so scripted callers parse one
     format for both success and failure. *)
  let fail code kind msg =
    if Array.exists (String.equal "--json") Sys.argv then
      print_endline
        (Json.to_string
           (Json.Obj
              [ ("error", Json.String kind);
                ("message", Json.String msg);
                ("exit_code", Json.Int code) ]))
    else Format.eprintf "apex: %s: %s@." kind msg;
    exit code
  in
  try exit (Cmd.eval ~catch:false main) with
  | Invalid_argument msg | Failure msg -> fail 2 "invalid-argument" msg
  | Sys_error msg -> fail 3 "io-error" msg
  | Apex_guard.Cancelled msg -> fail 4 "cancelled" msg
  | Apex_guard.Fault.Injected site -> fail 5 "fault-injected" site
  | Apex_mapper.Cover.Unmappable msg -> fail 1 "unmappable" msg
