(* Tests for datapath construction and subgraph merging. *)

module Op = Apex_dfg.Op
module G = Apex_dfg.Graph
module Interp = Apex_dfg.Interp
module Pattern = Apex_mining.Pattern
module D = Apex_merging.Datapath
module Merge = Apex_merging.Merge
module Clique = Apex_merging.Clique

let check = Alcotest.check
let int = Alcotest.int

(* Fig. 5a: a1 = add(a2, const); a2 = add(x, y) *)
let subgraph1 () =
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "x") in
  let y = G.Builder.add0 b (Op.Input "y") in
  let c = G.Builder.add0 b (Op.Const 3) in
  let a2 = G.Builder.add2 b Op.Add x y in
  let a1 = G.Builder.add2 b Op.Add a2 c in
  ignore (G.Builder.add1 b (Op.Output "o") a1);
  Pattern.of_graph (G.Builder.finish b)

(* Fig. 5b: b2 = add(b3, const); b3 = add(mul(u,v), w) *)
let subgraph2 () =
  let b = G.Builder.create () in
  let u = G.Builder.add0 b (Op.Input "u") in
  let v = G.Builder.add0 b (Op.Input "v") in
  let w = G.Builder.add0 b (Op.Input "w") in
  let d = G.Builder.add0 b (Op.Const 7) in
  let m = G.Builder.add2 b Op.Mul u v in
  let b3 = G.Builder.add2 b Op.Add m w in
  let b2 = G.Builder.add2 b Op.Add b3 d in
  ignore (G.Builder.add1 b (Op.Output "o") b2);
  Pattern.of_graph (G.Builder.finish b)

let count_kind (dp : D.t) kind =
  Array.fold_left
    (fun acc (n : D.node) ->
      match (n.kind, kind) with
      | D.Fu k, `Fu k' when String.equal k k' -> acc + 1
      | D.Creg, `Creg -> acc + 1
      | D.In_port, `In -> acc + 1
      | D.Bit_in_port, `Bit_in -> acc + 1
      | _ -> acc)
    0 dp.nodes

(* evaluate a datapath config against the golden interpretation of the
   pattern it claims to implement *)
let config_matches_pattern dp (cfg : D.config) (p : Pattern.t) st =
  let pg = Pattern.graph p in
  let env_named = Interp.random_env st pg in
  let dp_env =
    List.map
      (fun (pat_input, port) ->
        let name =
          match (G.node pg pat_input).op with
          | Op.Input n | Op.Bit_input n -> n
          | _ -> assert false
        in
        (port, List.assoc name env_named))
      cfg.inputs
  in
  let golden = Interp.run pg env_named in
  let actual = D.evaluate dp cfg ~env:dp_env in
  List.for_all2
    (fun (_, expected) (_, got) -> expected = got)
    golden
    (List.sort compare actual)

(* --- datapath basics --- *)

let test_of_pattern_structure () =
  let dp = D.of_pattern (subgraph1 ()) in
  (match D.validate dp with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid: %s" m);
  check int "alus" 2 (count_kind dp (`Fu "alu"));
  check int "cregs" 1 (count_kind dp `Creg);
  check int "inputs" 2 (count_kind dp `In);
  check int "configs" 1 (List.length dp.configs);
  check int "outputs" 1 (D.n_outputs dp)

let test_of_pattern_evaluates () =
  let p = subgraph1 () in
  let dp = D.of_pattern p in
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 20 do
    Alcotest.(check bool) "golden match" true
      (config_matches_pattern dp (List.hd dp.configs) p st)
  done

(* --- proven widths on datapath nodes --- *)

(* x&0xff + y&0xff: the adder FU is provably 9 bits wide *)
let narrow_pattern () =
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "x") in
  let y = G.Builder.add0 b (Op.Input "y") in
  let m = G.Builder.add0 b (Op.Const 0xff) in
  let xl = G.Builder.add2 b Op.And x m in
  let yl = G.Builder.add2 b Op.And y m in
  let s = G.Builder.add2 b Op.Add xl yl in
  ignore (G.Builder.add1 b (Op.Output "o") s);
  Pattern.of_graph (G.Builder.finish b)

let fu_widths (dp : D.t) kind =
  Array.to_list dp.nodes
  |> List.filter_map (fun (n : D.node) ->
         match n.kind with
         | D.Fu k when String.equal k kind -> Some n.width
         | _ -> None)

let test_of_pattern_widths () =
  let dp = D.of_pattern (narrow_pattern ()) in
  (match D.validate dp with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid: %s" m);
  Alcotest.(check (list int)) "the And FUs carry 8 proven bits" [ 8; 8 ]
    (fu_widths dp "logic");
  Alcotest.(check (list int)) "the Add FU carries 9 proven bits" [ 9 ]
    (fu_widths dp "alu");
  (* full-width patterns keep natural widths *)
  let full = D.of_pattern (subgraph1 ()) in
  Alcotest.(check (list int)) "unmasked adds stay 16-bit" [ 16; 16 ]
    (fu_widths full "alu")

let test_merge_joins_widths () =
  (* merging a narrow pattern into a full-width datapath must keep the
     shared FU wide enough for both: widths join by max *)
  let wide = D.of_pattern (subgraph1 ()) in
  let merged, _ = Merge.merge wide (narrow_pattern ()) in
  (match D.validate merged with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid after merge: %s" m);
  List.iter
    (fun w -> check int "shared alu stays full width" 16 w)
    (fu_widths merged "alu");
  (* and the narrow direction: two narrow patterns merge narrow *)
  let narrow = D.of_pattern (narrow_pattern ()) in
  let merged2, _ = Merge.merge narrow (narrow_pattern ()) in
  Alcotest.(check bool) "narrow merge keeps the 9-bit adder" true
    (List.for_all (fun w -> w = 9) (fu_widths merged2 "alu"));
  (* width-aware area: the narrow datapath is cheaper than the same
     structure at full width *)
  Alcotest.(check bool) "narrow datapath is smaller" true
    (D.area narrow < D.area (D.of_pattern (subgraph1 ())))

(* --- Fig. 5 merge --- *)

let test_fig5_merge () =
  let p1 = subgraph1 () and p2 = subgraph2 () in
  let dp1 = D.of_pattern p1 in
  let merged, report = Merge.merge dp1 p2 in
  (match D.validate merged with
  | Ok () -> ()
  | Error m -> Alcotest.failf "merged invalid: %s" m);
  (* both adds of subgraph 2 share the adds of subgraph 1, the constants
     merge, and the mul is new: 2 ALUs + 1 MUL + 1 Creg *)
  check int "alus shared" 2 (count_kind merged (`Fu "alu"));
  check int "one mul" 1 (count_kind merged (`Fu "mul"));
  check int "cregs shared" 1 (count_kind merged `Creg);
  check int "two configs" 2 (List.length merged.configs);
  Alcotest.(check bool) "optimal clique" true report.optimal;
  Alcotest.(check bool) "found opportunities" true (report.n_opportunities > 3);
  Alcotest.(check bool) "saved area" true (report.clique_weight > 0.0)

let test_fig5_configs_still_work () =
  let p1 = subgraph1 () and p2 = subgraph2 () in
  let merged, _ = Merge.merge (D.of_pattern p1) p2 in
  let st = Random.State.make [| 7 |] in
  let cfg1 = List.nth merged.configs 0 and cfg2 = List.nth merged.configs 1 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "config 1 (subgraph 1)" true
      (config_matches_pattern merged cfg1 p1 st);
    Alcotest.(check bool) "config 2 (subgraph 2)" true
      (config_matches_pattern merged cfg2 p2 st)
  done

let test_merged_area_below_union () =
  let p1 = subgraph1 () and p2 = subgraph2 () in
  let merged, _ = Merge.merge (D.of_pattern p1) p2 in
  let union, _ = Merge.merge ~strategy:Merge.No_sharing (D.of_pattern p1) p2 in
  Alcotest.(check bool) "merge saves area" true (D.area merged < D.area union)

let test_no_sharing_still_correct () =
  let p1 = subgraph1 () and p2 = subgraph2 () in
  let dp, _ = Merge.merge ~strategy:Merge.No_sharing (D.of_pattern p1) p2 in
  let st = Random.State.make [| 9 |] in
  for _ = 1 to 20 do
    Alcotest.(check bool) "cfg1" true
      (config_matches_pattern dp (List.nth dp.configs 0) p1 st);
    Alcotest.(check bool) "cfg2" true
      (config_matches_pattern dp (List.nth dp.configs 1) p2 st)
  done

let test_commutative_merge () =
  (* add(x, mul(u,v)) and add(mul(u,v), x) should merge onto one
     add + one mul regardless of operand order *)
  let make swap =
    let b = G.Builder.create () in
    let x = G.Builder.add0 b (Op.Input "x") in
    let u = G.Builder.add0 b (Op.Input "u") in
    let v = G.Builder.add0 b (Op.Input "v") in
    let m = G.Builder.add2 b Op.Mul u v in
    let a = if swap then G.Builder.add2 b Op.Add m x else G.Builder.add2 b Op.Add x m in
    ignore (G.Builder.add1 b (Op.Output "o") a);
    Pattern.of_graph (G.Builder.finish b)
  in
  (* note: canonicalization already identifies these two, so force
     distinct patterns by changing one op *)
  let p1 = make false in
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "x") in
  let u = G.Builder.add0 b (Op.Input "u") in
  let v = G.Builder.add0 b (Op.Input "v") in
  let m = G.Builder.add2 b Op.Mul u v in
  let s = G.Builder.add2 b Op.Add m x in
  let t = G.Builder.add2 b Op.Sub s x in
  ignore (G.Builder.add1 b (Op.Output "o") t);
  let p2 = Pattern.of_graph (G.Builder.finish b) in
  let merged, _ = Merge.merge (D.of_pattern p1) p2 in
  check int "single mul" 1 (count_kind merged (`Fu "mul"));
  (* the adds share one ALU; the sub needs a second ALU slot or slice *)
  Alcotest.(check bool) "alus <= 2" true (count_kind merged (`Fu "alu") <= 2);
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "cfg1 ok" true
      (config_matches_pattern merged (List.nth merged.configs 0) p1 st);
    Alcotest.(check bool) "cfg2 ok" true
      (config_matches_pattern merged (List.nth merged.configs 1) p2 st)
  done

let test_merge_all_chain () =
  let ps = [ subgraph1 (); subgraph2 () ] in
  let dp = Merge.merge_all ps in
  check int "configs" 2 (List.length dp.configs);
  match D.validate dp with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid: %s" m

let test_datapath_dot () =
  let merged, _ = Merge.merge (D.of_pattern (subgraph1 ())) (subgraph2 ()) in
  let dot = D.to_dot ~name:"merged" merged in
  let contains s =
    let re = Str.regexp_string s in
    try ignore (Str.search_forward re dot 0); true with Not_found -> false
  in
  Alcotest.(check bool) "header" true (contains "digraph merged");
  Alcotest.(check bool) "alu block" true (contains "alu");
  Alcotest.(check bool) "creg" true (contains "creg");
  (* the Fig. 5 merge inserts a mux: some dashed (multi-source) edge *)
  Alcotest.(check bool) "mux edge" true (contains "style=dashed")

(* --- clique solver --- *)

let test_clique_simple () =
  (* triangle 0-1-2 with weights 1,1,1 plus isolated heavy vertex 3 (w=2.5) *)
  let adj =
    [| [| false; true; true; false |];
       [| true; false; true; false |];
       [| true; true; false; false |];
       [| false; false; false; false |] |]
  in
  let p = { Clique.n = 4; weight = [| 1.0; 1.0; 1.0; 2.5 |]; adj } in
  let s = Clique.solve p in
  Alcotest.(check (list int)) "triangle wins" [ 0; 1; 2 ] s.members;
  Alcotest.(check bool) "optimal" true s.optimal

let test_clique_greedy_can_be_suboptimal () =
  (* greedy picks the heavy vertex first and gets stuck *)
  let adj =
    [| [| false; true; true; false |];
       [| true; false; true; false |];
       [| true; true; false; false |];
       [| false; false; false; false |] |]
  in
  let p = { Clique.n = 4; weight = [| 1.0; 1.0; 1.0; 2.5 |]; adj } in
  let g = Clique.greedy p in
  Alcotest.(check (list int)) "greedy takes heavy" [ 3 ] g

let test_clique_empty () =
  let p = { Clique.n = 0; weight = [||]; adj = [||] } in
  let s = Clique.solve p in
  Alcotest.(check (list int)) "empty" [] s.members

(* --- property: merged datapaths always implement all their patterns --- *)

let random_pattern st =
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "x") in
  let y = G.Builder.add0 b (Op.Input "y") in
  let words = ref [ x; y ] in
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let word_ops = [| Op.Add; Op.Sub; Op.Mul; Op.And; Op.Or; Op.Xor; Op.Smax; Op.Umin; Op.Lshr |] in
  let n = 1 + Random.State.int st 4 in
  for _ = 1 to n do
    let op = word_ops.(Random.State.int st (Array.length word_ops)) in
    let a = pick !words and c = pick !words in
    let id = G.Builder.add2 b op a c in
    words := id :: !words
  done;
  ignore (G.Builder.add1 b (Op.Output "o") (List.hd !words));
  Pattern.of_graph (G.Builder.finish b)

let prop_merge_preserves_semantics =
  QCheck.Test.make ~name:"all configs of merged datapaths match golden model"
    ~count:60 QCheck.(int)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let k = 2 + Random.State.int st 3 in
      let patterns = List.init k (fun _ -> random_pattern st) in
      let dp =
        List.fold_left
          (fun dp p -> fst (Merge.merge dp p))
          (D.of_pattern (List.hd patterns))
          (List.tl patterns)
      in
      (match D.validate dp with Ok () -> () | Error m -> failwith m);
      (* config i implements pattern i *)
      List.for_all2
        (fun cfg p ->
          List.for_all
            (fun _ -> config_matches_pattern dp cfg p st)
            (List.init 10 Fun.id))
        dp.configs patterns)

let props = List.map QCheck_alcotest.to_alcotest [ prop_merge_preserves_semantics ]

let () =
  Alcotest.run "merging"
    [ ( "datapath",
        [ Alcotest.test_case "of_pattern structure" `Quick test_of_pattern_structure;
          Alcotest.test_case "of_pattern evaluates" `Quick test_of_pattern_evaluates;
          Alcotest.test_case "of_pattern proves widths" `Quick test_of_pattern_widths ] );
      ( "merge",
        [ Alcotest.test_case "Fig. 5: shares adds and consts" `Quick test_fig5_merge;
          Alcotest.test_case "Fig. 5: both configs work" `Quick test_fig5_configs_still_work;
          Alcotest.test_case "merge saves area vs union" `Quick test_merged_area_below_union;
          Alcotest.test_case "no-sharing strategy correct" `Quick test_no_sharing_still_correct;
          Alcotest.test_case "commutative operands merge" `Quick test_commutative_merge;
          Alcotest.test_case "merge_all chain" `Quick test_merge_all_chain;
          Alcotest.test_case "datapath dot" `Quick test_datapath_dot;
          Alcotest.test_case "merge joins widths" `Quick test_merge_joins_widths ] );
      ( "clique",
        [ Alcotest.test_case "exact beats heavy vertex" `Quick test_clique_simple;
          Alcotest.test_case "greedy suboptimal case" `Quick test_clique_greedy_can_be_suboptimal;
          Alcotest.test_case "empty problem" `Quick test_clique_empty ] );
      ("properties", props) ]
