lib/mining/miner.mli: Apex_dfg Pattern
