CI_TRACE := /tmp/apex-ci-trace.json

.PHONY: all build test bench ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Build, run the full test suite, lint every built-in application with
# warnings fatal, then smoke-test the instrumented flow: a traced,
# --check-verified profile of the camera pipeline must produce a
# well-formed JSON report with the key search counters populated —
# including proof that the phase-boundary lint checkers actually ran.
ci: build test
	dune exec bin/apex_cli.exe -- lint --all --werror
	dune exec bin/apex_cli.exe -- profile camera --check --trace=$(CI_TRACE)
	dune exec bin/apex_cli.exe -- trace-check $(CI_TRACE) \
	  --require mining.patterns_grown \
	  --require mining.embeddings_enumerated \
	  --require merging.clique_nodes \
	  --require rules.synthesized \
	  --require mapper.cover_attempts \
	  --require dse.memo_hits \
	  --require lint.checks_run

clean:
	dune clean
	rm -f $(CI_TRACE)
