module Op = Apex_dfg.Op
module D = Apex_merging.Datapath
module Cover = Apex_mapper.Cover

type hop = (int * int) * (int * int)

type net = {
  name : string;
  width : Op.width;
  source : int * int;
  sinks : (int * int) list;
  tree : hop list;
  tracks : (hop * int) list;
  (** concrete track index used on each hop (detailed routing) *)
}

type t = {
  nets : net list;
  word_hops : int;
  bit_hops : int;
  overuse : int;
  iterations : int;
}

(* net extraction: one net per (driver, width) with its sink tiles *)
let extract_nets (p : Place.t) (m : Cover.t) =
  let tbl : (string, Op.width * (int * int) * (int * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  (* all routed nets are treated as 16-bit; the fabric's 1-bit tracks
     are plentiful and our applications route words between PEs *)
  let src_of (drv : Cover.driver) =
    match drv with
    | Cover.From_input n -> List.assoc n p.input_locs
    | Cover.From_pe (j, _) -> p.loc.(j)
  in
  let key (drv : Cover.driver) =
    match drv with
    | Cover.From_input n -> "i:" ^ n
    | Cover.From_pe (j, pos) -> Printf.sprintf "p:%d:%d" j pos
  in
  let add drv sink =
    let k = key drv in
    match Hashtbl.find_opt tbl k with
    | Some (w, src, sinks) ->
        if not (List.mem sink sinks) then
          Hashtbl.replace tbl k (w, src, sink :: sinks)
    | None -> Hashtbl.replace tbl k (Op.Word, src_of drv, [ sink ])
  in
  Array.iteri
    (fun idx (inst : Cover.instance) ->
      List.iter (fun (_, drv) -> add drv p.loc.(idx)) inst.inputs;
      ignore idx)
    m.instances;
  List.iter
    (fun (name, drv) -> add drv (List.assoc name p.output_locs))
    m.outputs;
  Hashtbl.fold
    (fun name (w, src, sinks) acc -> (name, w, src, sinks) :: acc)
    tbl []
  |> List.sort compare

let neighbors fabric (x, y) =
  List.filter
    (fun (nx, ny) ->
      Fabric.in_bounds fabric ~x:nx ~y:ny
      || nx = -1 || nx = fabric.Fabric.width (* IO columns *))
    [ (x + 1, y); (x - 1, y); (x, y + 1); (x, y - 1) ]

(* Dijkstra from a set of tree nodes to one target over congestion-aware
   edge costs *)
let shortest fabric ~cost ~sources ~target =
  let dist : (int * int, float) Hashtbl.t = Hashtbl.create 256 in
  let prev : (int * int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let module Pq = Set.Make (struct
    type t = float * (int * int)

    let compare = compare
  end) in
  let pq = ref Pq.empty in
  List.iter
    (fun s ->
      Hashtbl.replace dist s 0.0;
      pq := Pq.add (0.0, s) !pq)
    sources;
  let found = ref false in
  while (not !found) && not (Pq.is_empty !pq) do
    let ((d, u) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if d <= Hashtbl.find dist u +. 1e-9 then begin
      if u = target then found := true
      else
        List.iter
          (fun v ->
            let c = d +. cost (u, v) in
            let better =
              match Hashtbl.find_opt dist v with
              | None -> true
              | Some dv -> c < dv -. 1e-12
            in
            if better then begin
              Hashtbl.replace dist v c;
              Hashtbl.replace prev v u;
              pq := Pq.add (c, v) !pq
            end)
          (neighbors fabric u)
    end
  done;
  if not !found then None
  else begin
    let rec walk node acc =
      match Hashtbl.find_opt prev node with
      | None -> acc
      | Some p -> walk p ((p, node) :: acc)
    in
    Some (walk target [])
  end

let route_net fabric ~cost ~source ~sinks =
  (* grow a tree: route each sink from the current tree *)
  let tree_nodes = ref [ source ] in
  let tree_edges = ref [] in
  let sinks =
    List.sort
      (fun a b ->
        let d (x, y) = abs (x - fst source) + abs (y - snd source) in
        compare (d a) (d b))
      sinks
  in
  let ok = ref true in
  List.iter
    (fun sink ->
      if !ok && not (List.mem sink !tree_nodes) then
        match shortest fabric ~cost ~sources:!tree_nodes ~target:sink with
        | None -> ok := false
        | Some path ->
            List.iter
              (fun ((_, b) as e) ->
                if not (List.mem e !tree_edges) then tree_edges := e :: !tree_edges;
                if not (List.mem b !tree_nodes) then tree_nodes := b :: !tree_nodes)
              path)
    sinks;
  if !ok then Some (List.rev !tree_edges) else None

let route ?(max_iters = 30) (p : Place.t) (m : Cover.t) =
  let fabric = p.fabric in
  let nets = extract_nets p m in
  let capacity = fabric.Fabric.params.word_tracks in
  let usage : (hop, int) Hashtbl.t = Hashtbl.create 1024 in
  let history : (hop, float) Hashtbl.t = Hashtbl.create 1024 in
  let get tbl k d = Option.value ~default:d (Hashtbl.find_opt tbl k) in
  let routed = ref [] in
  let iterations = ref 0 in
  let legal = ref false in
  while (not !legal) && !iterations < max_iters do
    incr iterations;
    Hashtbl.reset usage;
    routed := [];
    List.iter
      (fun (name, width, source, sinks) ->
        let cost (e : hop) =
          let u = get usage e 0 in
          let h = get history e 0.0 in
          let over = if u >= capacity then 4.0 *. float_of_int (u - capacity + 1) else 0.0 in
          1.0 +. h +. over
        in
        match route_net fabric ~cost ~source ~sinks with
        | None -> failwith ("Route: net unroutable: " ^ name)
        | Some tree ->
            List.iter (fun e -> Hashtbl.replace usage e (get usage e 0 + 1)) tree;
            routed := { name; width; source; sinks; tree; tracks = [] } :: !routed)
      nets;
    (* congestion check *)
    let over = ref 0 in
    Hashtbl.iter
      (fun e u ->
        if u > capacity then begin
          incr over;
          Hashtbl.replace history e (get history e 0.0 +. 1.0)
        end)
      usage;
    if !over = 0 then legal := true
  done;
  (* detailed routing: give each net a concrete track index per hop
     (first free track on that boundary, in net order) *)
  let track_next : (hop, int) Hashtbl.t = Hashtbl.create 256 in
  let nets =
    List.rev_map
      (fun n ->
        let tracks =
          List.map
            (fun e ->
              let t = get track_next e 0 in
              Hashtbl.replace track_next e (t + 1);
              (e, t))
            n.tree
        in
        { n with tracks })
      !routed
  in
  let word_hops, bit_hops =
    List.fold_left
      (fun (w, b) n ->
        match n.width with
        | Op.Word -> (w + List.length n.tree, b)
        | Op.Bit -> (w, b + List.length n.tree))
      (0, 0) nets
  in
  let overuse =
    let count = ref 0 in
    Hashtbl.iter (fun _ u -> if u > capacity then incr count) usage;
    !count
  in
  { nets; word_hops; bit_hops; overuse; iterations = !iterations }

let tiles_touched t =
  List.concat_map (fun n -> List.concat_map (fun (a, b) -> [ a; b ]) n.tree) t.nets
  |> List.sort_uniq compare

let routing_only_tiles t (p : Place.t) (m : Cover.t) =
  let pe_tiles = Array.to_list p.loc in
  ignore m;
  tiles_touched t
  |> List.filter (fun tile ->
         Fabric.in_bounds p.fabric ~x:(fst tile) ~y:(snd tile)
         && not (List.mem tile pe_tiles))
  |> List.length
