(** Analytic models of the non-CGRA comparison points of Section 5.4:
    an FPGA (Virtex Ultrascale+ VU9P), an ASIC compiled by Catapult HLS
    from the same application, and the Simba ML accelerator.

    We do not have those systems; per the reproduction rules each is
    replaced by an analytic model driven by the application's operation
    counts and calibrated to the energy/runtime ratios the paper reports
    (Fig. 17: FPGA 38-159x the CGRA-IP energy; ASIC below the CGRA;
    Fig. 18: Simba ~16x more energy-efficient than CGRA-ML on ResNet). *)

type app_profile = {
  word_ops : int;       (** primitive word ops per output element *)
  mul_ops : int;        (** of which multiplies *)
  outputs : int;        (** output elements per run (e.g. pixels) *)
  critical_ops : int;   (** ops on the critical path per output *)
}

type result = {
  energy_uj : float;   (** total energy for the run, in uJ *)
  runtime_ms : float;
  area_mm2 : float;
}

val fpga : app_profile -> result
(** Bit-level LUT fabric: each 16-bit word op costs ~16 LUT-level
    operations with long programmable wires; clocked at ~250 MHz. *)

val asic : app_profile -> result
(** Fixed-function pipeline at the technology's primitive cost with no
    configuration overhead; clocked at ~1 GHz. *)

val simba : app_profile -> result
(** A dedicated MAC-array accelerator: multiplies at near-ASIC cost with
    amortized control; only meaningful for ML profiles. *)
