(** Opt-in graph optimization gate for the DSE flow ([--optimize]).

    When enabled, {!app} rewrites an application's graph through the
    validated optimizer ({!Apex_analysis.Opt.run}) before it enters
    mining, merging, mapping or linting.  Disabled, {!app} is the
    identity.  Set the flag once at process start: the per-application
    result is memoized, and {!key_suffix} lets memo tables distinguish
    optimized from raw variants. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val key_suffix : unit -> string
(** [":opt"] when enabled, [""] otherwise — append to variant memo
    keys. *)

val app : Apex_halide.Apps.t -> Apex_halide.Apps.t
