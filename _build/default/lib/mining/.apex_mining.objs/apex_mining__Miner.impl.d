lib/mining/miner.ml: Apex_dfg Array Buffer Hashtbl List Pattern String
