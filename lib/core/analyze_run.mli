(** The `apex analyze` driver: static-analysis facts and validated
    node-count reductions per application. *)

type app_report = {
  app : string;
  nodes : int;
  compute_nodes : int;
  const_facts : int;
  bounded_facts : int;
  stats : Apex_analysis.Opt.stats;
  validated : bool;
}

val report_for : Apex_halide.Apps.t -> app_report
val run : Apex_halide.Apps.t list -> app_report list

val reduction : app_report -> int
(** Nodes eliminated by the optimizer. *)

val pp : Format.formatter -> app_report list -> unit
val to_json : app_report list -> Apex_telemetry.Json.t
