type width = Word | Bit

type t =
  | Add | Sub | Mul
  | Shl | Lshr | Ashr
  | And | Or | Xor | Not
  | Abs | Smax | Smin | Umax | Umin
  | Eq | Neq | Slt | Sle | Ult | Ule
  | Mux
  | Lut of int
  | Const of int
  | Bit_const of bool
  | Input of string
  | Bit_input of string
  | Output of string
  | Bit_output of string
  | Reg
  | Reg_file of int

let arity = function
  | Add | Sub | Mul | Shl | Lshr | Ashr
  | And | Or | Xor
  | Smax | Smin | Umax | Umin
  | Eq | Neq | Slt | Sle | Ult | Ule -> 2
  | Not | Abs -> 1
  | Mux -> 3
  | Lut _ -> 3
  | Const _ | Bit_const _ | Input _ | Bit_input _ -> 0
  | Output _ | Bit_output _ -> 1
  | Reg -> 1
  | Reg_file _ -> 1

let input_widths = function
  | Add | Sub | Mul | Shl | Lshr | Ashr
  | And | Or | Xor
  | Smax | Smin | Umax | Umin
  | Eq | Neq | Slt | Sle | Ult | Ule -> [| Word; Word |]
  | Not | Abs -> [| Word |]
  | Mux -> [| Bit; Word; Word |]
  | Lut _ -> [| Bit; Bit; Bit |]
  | Const _ | Bit_const _ | Input _ | Bit_input _ -> [||]
  | Output _ -> [| Word |]
  | Bit_output _ -> [| Bit |]
  | Reg -> [| Word |]
  | Reg_file _ -> [| Word |]

let result_width = function
  | Eq | Neq | Slt | Sle | Ult | Ule | Lut _ | Bit_const _
  | Bit_input _ | Bit_output _ -> Bit
  | Add | Sub | Mul | Shl | Lshr | Ashr
  | And | Or | Xor | Not | Abs
  | Smax | Smin | Umax | Umin | Mux
  | Const _ | Input _ | Output _ | Reg | Reg_file _ -> Word

let is_commutative = function
  | Add | Mul | And | Or | Xor
  | Smax | Smin | Umax | Umin | Eq | Neq -> true
  | Sub | Shl | Lshr | Ashr | Not | Abs
  | Slt | Sle | Ult | Ule | Mux | Lut _
  | Const _ | Bit_const _ | Input _ | Bit_input _
  | Output _ | Bit_output _ | Reg | Reg_file _ -> false

let is_compute = function
  | Add | Sub | Mul | Shl | Lshr | Ashr
  | And | Or | Xor | Not | Abs
  | Smax | Smin | Umax | Umin
  | Eq | Neq | Slt | Sle | Ult | Ule
  | Mux | Lut _ -> true
  | Const _ | Bit_const _ | Input _ | Bit_input _
  | Output _ | Bit_output _ | Reg | Reg_file _ -> false

let is_io = function
  | Input _ | Bit_input _ | Output _ | Bit_output _ -> true
  | _ -> false

let is_const = function Const _ | Bit_const _ -> true | _ -> false

let is_reg = function Reg | Reg_file _ -> true | _ -> false

(* The hardware-block classes below drive the merging rules: an ALU slice
   implements add/sub/min/max/abs, a comparator implements the predicate
   ops (it is an ALU subtract plus flag logic, but it produces a 1-bit
   result so it occupies a distinct block), a barrel shifter implements
   the three shifts, and bitwise logic ops share one logic unit. *)
let kind = function
  | Add | Sub | Abs | Smax | Smin | Umax | Umin -> "alu"
  | Mul -> "mul"
  | Shl | Lshr | Ashr -> "shift"
  | And | Or | Xor | Not -> "logic"
  | Eq | Neq | Slt | Sle | Ult | Ule -> "cmp"
  | Mux -> "mux"
  | Lut _ -> "lut"
  | Const _ -> "const"
  | Bit_const _ -> "bitconst"
  | Input _ -> "input"
  | Bit_input _ -> "bitinput"
  | Output _ -> "output"
  | Bit_output _ -> "bitoutput"
  | Reg -> "reg"
  | Reg_file _ -> "regfile"

let mnemonic = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Not -> "not"
  | Abs -> "abs"
  | Smax -> "smax" | Smin -> "smin" | Umax -> "umax" | Umin -> "umin"
  | Eq -> "eq" | Neq -> "neq"
  | Slt -> "slt" | Sle -> "sle" | Ult -> "ult" | Ule -> "ule"
  | Mux -> "mux"
  | Lut tt -> Printf.sprintf "lut%02x" (tt land 0xff)
  | Const v -> Printf.sprintf "const%d" (v land 0xffff)
  | Bit_const b -> if b then "bconst1" else "bconst0"
  | Input s -> "in:" ^ s
  | Bit_input s -> "bin:" ^ s
  | Output s -> "out:" ^ s
  | Bit_output s -> "bout:" ^ s
  | Reg -> "reg"
  | Reg_file d -> Printf.sprintf "rf%d" d

let pp ppf op = Format.pp_print_string ppf (mnemonic op)

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let mergeable a b = is_compute a && is_compute b && String.equal (kind a) (kind b)

let all_compute =
  [ Add; Sub; Mul; Shl; Lshr; Ashr; And; Or; Xor; Not; Abs;
    Smax; Smin; Umax; Umin; Eq; Neq; Slt; Sle; Ult; Ule; Mux; Lut 0xE8 ]
