(** Backward demanded-bits + liveness analysis — the second
    {!Dataflow} instance, dual to the forward {!Absint} product.

    The fact for a node is the mask of its result bits that some
    consumer can observe: [Output]/[Bit_output] markers demand
    everything, arithmetic demands its argument columns at or below the
    highest demanded result column, constant shifts translate the mask,
    [Lut] and the [Mux] select demand a single bit, comparators demand
    full compare width, and [Reg]/[Reg_file] widen to full demand
    across the cycle boundary.  A node whose fixpoint demand is 0 is
    dead.

    Soundness: flipping any argument bit outside
    [demand_on_arg g u p d] cannot change the bits of [u]'s result
    selected by [d] (under {!Apex_dfg.Sem} semantics); transitively,
    flipping node bits outside [analyze g] cannot change any graph
    output. *)

val analyze : Apex_dfg.Graph.t -> int array
(** Demanded-bits mask per node id (bit-valued nodes use bit 0). *)

val demand_on_arg : Apex_dfg.Graph.t -> Apex_dfg.Graph.node -> int -> int -> int
(** [demand_on_arg g u p d] — bits user [u] needs of its [p]-th
    argument when [u]'s own result is demanded to mask [d].  Exposed
    for the lint layer and tests.
    @raise Invalid_argument on a nullary [u]. *)

val is_live : int array -> int -> bool
(** [is_live (analyze g) id] — does any output transitively observe
    node [id]? *)

val upto : int -> int
(** All bits at or below the highest set bit of the mask. *)

val from : int -> int
(** All bits at or above the lowest set bit of the mask. *)

val msb_index : int -> int
(** Index of the highest set bit, [-1] for 0. *)
