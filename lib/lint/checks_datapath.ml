(* Merged-datapath verification.

   Structure first (edges, FU op sets, static acyclicity), then per-config
   invariants: routes over existing edges, exhaustive mux selects on every
   active port, and — for configs whose label names a merged pattern —
   exact coverage of the pattern's compute nodes and functional agreement
   with the golden interpreter on random vectors (the "merged datapath
   still realizes both source graphs" check of Section 3.3). *)

module Op = Apex_dfg.Op
module G = Apex_dfg.Graph
module Interp = Apex_dfg.Interp
module Pattern = Apex_mining.Pattern
module Dp = Apex_merging.Datapath
module Tech = Apex_models.Tech
module D = Diagnostic

let functional_vectors = 8

let in_range dp id = id >= 0 && id < Array.length dp.Dp.nodes

let is_fu dp id =
  in_range dp id
  && match dp.Dp.nodes.(id).Dp.kind with Dp.Fu _ -> true | _ -> false

let structure (dp : Dp.t) emit =
  let n = Array.length dp.Dp.nodes in
  Array.iteri
    (fun i (nd : Dp.node) ->
      (if nd.Dp.id <> i then
         emit
           (D.errorf ~loc:(D.Node i) ~code:"APX020"
              "carries id %d but sits at index %d" nd.Dp.id i));
      match nd.Dp.kind with
      | Dp.Fu k ->
          if nd.Dp.ops = [] then
            emit
              (D.errorf ~loc:(D.Node i) ~code:"APX021"
                 "functional unit of kind %S supports no operations" k)
          else
            List.iter
              (fun op ->
                if not (String.equal (Op.kind op) k) then
                  emit
                    (D.errorf ~loc:(D.Node i) ~code:"APX021"
                       "op %s is of kind %S, not the FU's kind %S"
                       (Op.mnemonic op) (Op.kind op) k))
              nd.Dp.ops
      | Dp.Creg | Dp.In_port | Dp.Bit_in_port -> ())
    dp.Dp.nodes;
  let seen_edges = Hashtbl.create 64 in
  List.iter
    (fun (e : Dp.edge) ->
      let loc = D.Edge { src = e.Dp.src; dst = e.Dp.dst; port = e.Dp.port } in
      if not (in_range dp e.Dp.src && in_range dp e.Dp.dst) then
        emit (D.errorf ~loc ~code:"APX020" "endpoint out of range (%d nodes)" n)
      else if not (is_fu dp e.Dp.dst) then
        emit
          (D.errorf ~loc ~code:"APX020"
             "ends on a non-FU node; only functional units have input ports")
      else begin
        let key = (e.Dp.src, e.Dp.dst, e.Dp.port) in
        if Hashtbl.mem seen_edges key then
          emit (D.errorf ~loc ~code:"APX020" "duplicate edge")
        else Hashtbl.replace seen_edges key ()
      end)
    dp.Dp.edges;
  (* static acyclicity via Kahn's algorithm on deduplicated edges *)
  let pairs =
    List.filter_map
      (fun (e : Dp.edge) ->
        if in_range dp e.Dp.src && in_range dp e.Dp.dst then
          Some (e.Dp.src, e.Dp.dst)
        else None)
      dp.Dp.edges
    |> List.sort_uniq compare
  in
  let indeg = Array.make (max n 1) 0 in
  let out = Array.make (max n 1) [] in
  List.iter
    (fun (s, d) ->
      indeg.(d) <- indeg.(d) + 1;
      out.(s) <- d :: out.(s))
    pairs;
  let q = Queue.create () in
  Array.iteri (fun i d -> if i < n && d = 0 then Queue.add i q) indeg;
  let seen = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    incr seen;
    List.iter
      (fun d ->
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then Queue.add d q)
      out.(v)
  done;
  if !seen < n then
    emit
      (D.errorf ~code:"APX022"
         "static cycle through %d node%s (merging must keep the datapath a DAG)"
         (n - !seen)
         (if n - !seen = 1 then "" else "s"))

let config_checks (dp : Dp.t) (cfg : Dp.config) emit =
  let loc = D.Config cfg.Dp.label in
  let active = Hashtbl.create 8 in
  List.iter
    (fun (fu, op) ->
      if not (is_fu dp fu) then
        emit (D.errorf ~loc ~code:"APX023" "activates node %d, not an FU" fu)
      else begin
        if Hashtbl.mem active fu then
          emit (D.errorf ~loc ~code:"APX023" "activates FU %d twice" fu);
        Hashtbl.replace active fu op;
        if not (List.mem op dp.Dp.nodes.(fu).Dp.ops) then
          emit
            (D.errorf ~loc ~code:"APX023" "FU %d does not support op %s" fu
               (Op.mnemonic op))
      end)
    cfg.Dp.fu_ops;
  List.iter
    (fun ((dst, port), src) ->
      if
        not
          (List.exists
             (fun (e : Dp.edge) ->
               e.Dp.src = src && e.Dp.dst = dst && e.Dp.port = port)
             dp.Dp.edges)
      then
        emit
          (D.errorf ~loc ~code:"APX023" "routes a missing edge %d->%d.%d" src
             dst port)
      else if not (Hashtbl.mem active dst) then
        emit
          (D.notef ~loc ~code:"APX030"
             "routes port %d.%d of an inactive node (dead select encoding)"
             dst port)
      else if
        in_range dp src
        && is_fu dp src
        && not (Hashtbl.mem active src)
      then
        emit
          (D.errorf ~loc ~code:"APX023"
             "port %d.%d is driven by FU %d, which the config leaves inactive"
             dst port src))
    cfg.Dp.routes;
  (* exhaustive selects: every port of every active FU must have a route *)
  Hashtbl.iter
    (fun fu op ->
      for port = 0 to Op.arity op - 1 do
        if not (List.mem_assoc (fu, port) cfg.Dp.routes) then
          emit
            (D.errorf ~loc ~code:"APX024"
               "active FU %d (%s) has no route for port %d" fu
               (Op.mnemonic op) port)
      done)
    active;
  List.iter
    (fun (creg, v) ->
      if
        in_range dp creg
        && dp.Dp.nodes.(creg).Dp.kind <> Dp.Creg
      then
        emit
          (D.errorf ~loc ~code:"APX023"
             "assigns a constant to node %d, not a constant register" creg);
      if v land 0xffff <> v then
        emit
          (D.errorf ~loc ~code:"APX028"
             "constant register %d holds %d, outside 16 bits" creg v))
    cfg.Dp.consts;
  List.iter
    (fun (_, node) ->
      if not (in_range dp node) then
        emit (D.errorf ~loc ~code:"APX023" "exposes non-existent node %d" node))
    cfg.Dp.outputs

(* Random-vector realization check shared with the rule linter: does the
   configured datapath agree with the golden interpretation of the
   pattern?  Returns a description of the first disagreement. *)
let functional_mismatch (dp : Dp.t) (cfg : Dp.config) (p : Pattern.t) =
  let pg = Pattern.graph p in
  let st = Random.State.make [| 0x11ce; Hashtbl.hash cfg.Dp.label |] in
  let mismatch = ref None in
  (try
     for _ = 1 to functional_vectors do
       if !mismatch = None then begin
         let env_named = Interp.random_env st pg in
         let golden = Interp.run pg env_named in
         let dp_env =
           List.map
             (fun (pat_input, port) ->
               let name =
                 match (G.node pg pat_input).op with
                 | Op.Input s | Op.Bit_input s -> s
                 | op ->
                     raise
                       (Invalid_argument
                          (Printf.sprintf
                             "input binding names node %d (%s), not an input"
                             pat_input (Op.mnemonic op)))
               in
               (port, List.assoc name env_named))
             cfg.Dp.inputs
         in
         (* the flow's convention (cf. Verify.encode_datapath): the
            config's outputs, sorted by position, pair with the
            pattern's io_outputs in declaration order *)
         let actual = List.sort compare (Dp.evaluate dp cfg ~env:dp_env) in
         if List.length actual <> List.length golden then begin
           if !mismatch = None then
             mismatch :=
               Some
                 (Printf.sprintf "config exposes %d outputs, pattern has %d"
                    (List.length actual) (List.length golden))
         end
         else
           List.iter2
             (fun (name, want) (pos, got) ->
               if got <> want && !mismatch = None then
                 mismatch :=
                   Some
                     (Printf.sprintf "output %s (position %d): got %d, want %d"
                        name pos got want))
             golden actual
       end
     done
   with
  | Failure m | Invalid_argument m ->
      if !mismatch = None then mismatch := Some ("evaluation failed: " ^ m)
  | Not_found ->
      if !mismatch = None then
        mismatch := Some "evaluation failed: unbound input name");
  !mismatch

(* coverage + functional realization for configs that implement a mined
   pattern (matched by canonical code = config label) *)
let pattern_checks (dp : Dp.t) (cfg : Dp.config) (p : Pattern.t) emit =
  let loc = D.Config cfg.Dp.label in
  let pg = Pattern.graph p in
  let compute =
    Array.to_list (G.nodes pg)
    |> List.filter (fun (nd : G.node) -> Op.is_compute nd.op)
  in
  let ok_coverage =
    if List.length compute <> List.length cfg.Dp.fu_ops then begin
      emit
        (D.errorf ~loc ~code:"APX025"
           "pattern has %d compute nodes but the config activates %d FUs"
           (List.length compute)
           (List.length cfg.Dp.fu_ops));
      false
    end
    else begin
      let distinct =
        List.sort_uniq compare (List.map fst cfg.Dp.fu_ops)
      in
      if List.length distinct <> List.length cfg.Dp.fu_ops then begin
        emit
          (D.errorf ~loc ~code:"APX025"
             "two pattern nodes share one active FU (coverage not exactly \
              once)");
        false
      end
      else begin
        (* positional pairing: k-th compute node <-> k-th fu_op, an
           invariant Mapper.cover relies on *)
        let mismatches =
          List.map2
            (fun (nd : G.node) (_, op) -> (nd, op))
            compute cfg.Dp.fu_ops
          |> List.filter (fun ((nd : G.node), op) -> not (Op.equal nd.op op))
        in
        List.iter
          (fun ((nd : G.node), op) ->
            emit
              (D.errorf ~loc ~code:"APX025"
                 "pattern node %d computes %s but its paired FU runs %s"
                 nd.id (Op.mnemonic nd.op) (Op.mnemonic op)))
          mismatches;
        mismatches = []
      end
    end
  in
  if ok_coverage then
    match functional_mismatch dp cfg p with
    | Some m ->
        emit (D.errorf ~loc ~code:"APX026" "does not realize its pattern: %s" m)
    | None -> ()

let cost_model (dp : Dp.t) emit =
  Array.iter
    (fun (nd : Dp.node) ->
      match nd.Dp.kind with
      | Dp.Fu k ->
          let loc = D.Node nd.Dp.id in
          (match Tech.kind_cost k with
          | c ->
              if not (Float.is_finite c.Tech.area && c.Tech.area > 0.0) then
                emit
                  (D.errorf ~loc ~code:"APX029"
                     "kind %S has a non-positive area model" k)
          | exception _ ->
              emit (D.errorf ~loc ~code:"APX029" "kind %S has no cost model" k));
          List.iter
            (fun op ->
              match Tech.op_cost op with
              | c ->
                  if
                    not
                      (Float.is_finite c.Tech.area
                      && Float.is_finite c.Tech.delay
                      && c.Tech.delay > 0.0)
                  then
                    emit
                      (D.errorf ~loc ~code:"APX029"
                         "op %s has a non-finite or non-positive cost model"
                         (Op.mnemonic op))
              | exception _ ->
                  emit
                    (D.errorf ~loc ~code:"APX029" "op %s has no cost model"
                       (Op.mnemonic op)))
            nd.Dp.ops
      | _ -> ())
    dp.Dp.nodes;
  match Dp.area dp with
  | a ->
      if not (Float.is_finite a && a > 0.0) then
        emit
          (D.errorf ~code:"APX029" "datapath area %g is not finite and positive"
             a)
  | exception _ -> emit (D.errorf ~code:"APX029" "area model evaluation failed")

let dead_fus (dp : Dp.t) emit =
  let used = Hashtbl.create 16 in
  List.iter
    (fun (cfg : Dp.config) ->
      List.iter (fun (fu, _) -> Hashtbl.replace used fu ()) cfg.Dp.fu_ops)
    dp.Dp.configs;
  Array.iter
    (fun (nd : Dp.node) ->
      match nd.Dp.kind with
      | Dp.Fu k when not (Hashtbl.mem used nd.Dp.id) ->
          emit
            (D.warnf ~loc:(D.Node nd.Dp.id) ~code:"APX027"
               "FU of kind %S is active in no configuration (dead area)" k)
      | _ -> ())
    dp.Dp.nodes

let run ?(patterns = []) (dp : Dp.t) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  structure dp emit;
  let structurally_sound =
    List.for_all (fun (d : D.t) -> d.D.severity <> D.Error) !diags
  in
  let by_code = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace by_code (Pattern.code p) p) patterns;
  List.iter
    (fun (cfg : Dp.config) ->
      let before = List.length !diags in
      config_checks dp cfg emit;
      let clean = List.length !diags = before in
      match Hashtbl.find_opt by_code cfg.Dp.label with
      | Some p when structurally_sound && clean -> pattern_checks dp cfg p emit
      | _ -> ())
    dp.Dp.configs;
  if structurally_sound then cost_model dp emit;
  dead_fus dp emit;
  List.rev !diags
