lib/mapper/cover.ml: Apex_dfg Apex_merging Apex_mining Array Format Hashtbl List Option Printf Rules
