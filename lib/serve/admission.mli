(** Admission control: a bounded, multi-tenant, round-robin work queue.

    Submissions are grouped per tenant; [pop] serves tenants in
    round-robin rotation (one entry per turn), so a tenant flooding the
    queue delays its own later requests, not everyone else's.  The
    total queued depth is capped: a submit past the cap is a typed
    reject, never a block — the admission decision must be instant so
    the connection can answer "over capacity" while the workers grind.

    Deterministic: rotation order is tenant arrival order, entries
    within a tenant are FIFO, and no decision depends on timing — the
    fairness property is unit-testable without a running server. *)

type 'a t

val create : max_queue:int -> 'a t
(** [max_queue] caps entries admitted but not yet popped (>= 1). *)

val submit : 'a t -> tenant:string -> 'a -> [ `Admitted | `Full | `Closed ]

val pop : 'a t -> 'a option
(** Block until an entry is available (round-robin across tenants) or
    the queue is closed and drained; [None] means "no more work ever" —
    the worker should exit. *)

val pop_batch : 'a t -> max:int -> 'a list option
(** Like {!pop}, but once at least one entry is available, drain up to
    [max] entries without blocking again — exactly the sequence [max]
    successive [pop]s would have returned.  The returned list is
    nonempty; [None] means closed and drained. *)

val close : 'a t -> unit
(** Stop admitting ([submit] returns [`Closed]); blocked and future
    [pop]s keep draining what was already admitted, then return
    [None].  Idempotent. *)

val depth : 'a t -> int
(** Entries admitted and not yet popped. *)
