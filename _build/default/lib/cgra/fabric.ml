module Interconnect = Apex_models.Interconnect

type tile_kind = Pe_tile | Mem_tile

type t = {
  width : int;
  height : int;
  mem_column_period : int;
  params : Interconnect.params;
}

let create ?(width = 32) ?(height = 16) ?(mem_column_period = 4)
    ?(params = Interconnect.default) () =
  if width <= 0 || height <= 0 then invalid_arg "Fabric.create: empty grid";
  { width; height; mem_column_period; params }

let kind f ~x ~y =
  ignore y;
  if f.mem_column_period > 0 && (x + 1) mod f.mem_column_period = 0 then Mem_tile
  else Pe_tile

let positions f want =
  let acc = ref [] in
  for y = 0 to f.height - 1 do
    for x = 0 to f.width - 1 do
      if kind f ~x ~y = want then acc := (x, y) :: !acc
    done
  done;
  List.rev !acc

let pe_positions f = positions f Pe_tile
let mem_positions f = positions f Mem_tile

let n_pe_tiles f = List.length (pe_positions f)
let n_mem_tiles f = List.length (mem_positions f)

let in_bounds f ~x ~y = x >= 0 && x < f.width && y >= 0 && y < f.height

let io_west f i = (-1, i mod f.height)
let io_east f i = (f.width, i mod f.height)
