(* The `apex analyze` driver: per-application static-analysis report.

   For each application, run the abstract interpretation on the raw
   kernel, summarise how much the fact base knows (constant /
   range-bounded compute nodes), then run the validated optimizer and
   report the node-count reduction broken down by transform.  The
   optimized graph's validation verdict is part of the report — a
   [false] there is a soundness bug, not a property of the app. *)

module Apps = Apex_halide.Apps
module G = Apex_dfg.Graph
module Op = Apex_dfg.Op
module Absint = Apex_analysis.Absint
module Opt = Apex_analysis.Opt
module Json = Apex_telemetry.Json

type app_report = {
  app : string;
  nodes : int;
  compute_nodes : int;
  const_facts : int;  (** compute nodes with a provably constant value *)
  bounded_facts : int;  (** compute nodes with a non-trivial range/bits fact *)
  stats : Opt.stats;
  validated : bool;
}

let report_for (a : Apps.t) =
  Apex_telemetry.Span.with_ ("analyze:" ^ a.Apps.name) @@ fun () ->
  let g = a.Apps.graph in
  let facts = Absint.analyze g in
  let const_facts = ref 0 and bounded = ref 0 and compute = ref 0 in
  Array.iter
    (fun (nd : G.node) ->
      if Op.is_compute nd.G.op then begin
        incr compute;
        match facts.(nd.G.id).Absint.cst with
        | Some _ -> incr const_facts
        | None -> if not (Absint.is_top nd facts.(nd.G.id)) then incr bounded
      end)
    (G.nodes g);
  let r = Opt.run g in
  {
    app = a.Apps.name;
    nodes = G.length g;
    compute_nodes = !compute;
    const_facts = !const_facts;
    bounded_facts = !bounded;
    stats = r.Opt.stats;
    validated = r.Opt.validated;
  }

let run apps = List.map report_for apps

let reduction r = r.stats.Opt.before_nodes - r.stats.Opt.after_nodes

let pp_report ppf (r : app_report) =
  let s = r.stats in
  Format.fprintf ppf
    "%-10s %4d -> %4d nodes (-%d)  folds %d, identities %d, cse %d, dce %d  \
     cones %d proved / %d rejected  facts: %d const, %d bounded of %d compute%s@."
    r.app s.Opt.before_nodes s.Opt.after_nodes (reduction r) s.Opt.const_folds
    s.Opt.identities s.Opt.cse_merged s.Opt.dce_removed s.Opt.cones_proved
    s.Opt.cones_rejected r.const_facts r.bounded_facts r.compute_nodes
    (if r.validated then "" else "  VALIDATION FAILED")

let pp ppf reports =
  List.iter (pp_report ppf) reports;
  let total = List.fold_left (fun acc r -> acc + reduction r) 0 reports in
  let reduced = List.length (List.filter (fun r -> reduction r > 0) reports) in
  Format.fprintf ppf
    "%d application%s, %d with a smaller kernel, %d node%s eliminated in total@."
    (List.length reports)
    (if List.length reports = 1 then "" else "s")
    reduced total
    (if total = 1 then "" else "s")

let report_to_json (r : app_report) =
  let s = r.stats in
  Json.Obj
    [ ("app", Json.String r.app);
      ("nodes_before", Json.Int s.Opt.before_nodes);
      ("nodes_after", Json.Int s.Opt.after_nodes);
      ("reduction", Json.Int (reduction r));
      ("const_folds", Json.Int s.Opt.const_folds);
      ("identities", Json.Int s.Opt.identities);
      ("cse_merged", Json.Int s.Opt.cse_merged);
      ("dce_removed", Json.Int s.Opt.dce_removed);
      ("cones_proved", Json.Int s.Opt.cones_proved);
      ("cones_rejected", Json.Int s.Opt.cones_rejected);
      ("iterations", Json.Int s.Opt.iterations);
      ("compute_nodes", Json.Int r.compute_nodes);
      ("const_facts", Json.Int r.const_facts);
      ("bounded_facts", Json.Int r.bounded_facts);
      ("validated", Json.Bool r.validated) ]

let to_json reports =
  Json.Obj
    [ ("apps", Json.List (List.map report_to_json reports));
      ( "summary",
        Json.Obj
          [ ("applications", Json.Int (List.length reports));
            ( "reduced",
              Json.Int
                (List.length (List.filter (fun r -> reduction r > 0) reports)) );
            ( "nodes_eliminated",
              Json.Int (List.fold_left (fun a r -> a + reduction r) 0 reports) );
            ( "all_validated",
              Json.Bool (List.for_all (fun r -> r.validated) reports) ) ] ) ]
