lib/cgra/place.ml: Apex_mapper Array Fabric Float Hashtbl List Printf Random
