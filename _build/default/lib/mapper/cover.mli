(** Instruction selection: cover the application dataflow graph with PE
    configurations using greedy pattern matching, complex rules first
    (Section 4.1.2, after LLVM's DAG instruction selection).

    The result is the mapped graph of Fig. 7: one PE instance per
    accepted match, wired by drivers that are either application stream
    inputs or outputs of other PE instances. *)

type driver =
  | From_input of string        (** application stream input *)
  | From_pe of int * int        (** (instance index, PE output position) *)

type instance = {
  id : int;
  config : Apex_merging.Datapath.config;
      (** specialized: constant registers carry the matched constants *)
  rule_label : string;
  inputs : (int * driver) list; (** input-port node -> driver *)
  covered : int list;           (** application compute nodes this PE executes *)
}

type t = {
  app : Apex_dfg.Graph.t;
  instances : instance array;
  outputs : (string * driver) list;  (** application outputs *)
}

exception Unmappable of string
(** Raised when some application node is covered by no rule. *)

type order = Complex_first | Simple_first

val map_app :
  ?order:order -> rules:Rules.t list -> Apex_dfg.Graph.t -> t
(** Greedy covering.  [Simple_first] is the ablation baseline.
    @raise Unmappable when coverage fails. *)

val n_pes : t -> int

val ops_covered : t -> int
(** Total application compute nodes executed on PEs. *)

val utilization : t -> float
(** Average compute nodes per PE — the PE-utilization metric that
    specialization improves. *)

val run : t -> Apex_merging.Datapath.t -> (string * int) list -> (string * int) list
(** Simulate the mapped graph on the given PE datapath: evaluate every
    instance in dependency order and return the application outputs.
    This must agree with {!Apex_dfg.Interp.run} on the original graph —
    the post-mapping functional check. *)

val pp_stats : Format.formatter -> t -> unit
