test/test_mining.ml: Alcotest Apex_dfg Apex_mining Array Fun Hashtbl List Printf QCheck QCheck_alcotest Random String
