(** Opt-in phase-boundary verification (LLVM's [-verify-each] style).

    Disabled by default and free when disabled.  When enabled (the
    CLI's [--check] flag), the flow lints its intermediate artifacts at
    every phase boundary — after mining, merging, rule synthesis and
    pipelining.  Findings print to stderr; error-severity findings
    abort with [Invalid_argument] naming the phase. *)

val enable : unit -> unit

val disable : unit -> unit

val enabled : bool ref

val verify : string -> Apex_lint.Engine.artifact list -> unit
(** [verify phase artifacts] is a no-op unless enabled.
    @raise Invalid_argument when any checker reports an error. *)
