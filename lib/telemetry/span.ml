(* Hierarchical wall-clock spans.  [with_ "mining" f] times [f] and
   accounts it to the span "mining" nested under whatever span is
   currently open, together with the GC work (minor/major words
   allocated, compactions) the body was responsible for.  When the
   registry is disabled this is a single branch and a tail call — no
   allocation, no clock read, no GC stat.  When per-occurrence event
   collection is on (Registry.set_events, the Chrome trace feed), each
   completed span additionally records one timeline event tagged with
   the running domain's id. *)

let with_ name f =
  if not (Registry.is_enabled ()) then f ()
  else begin
    let sp = Registry.enter name in
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    Fun.protect f ~finally:(fun () ->
        let t1 = Unix.gettimeofday () in
        let g1 = Gc.quick_stat () in
        Registry.leave sp ~dt:(t1 -. t0)
          ~minor:(g1.Gc.minor_words -. g0.Gc.minor_words)
          ~major:(g1.Gc.major_words -. g0.Gc.major_words)
          ~compactions:(g1.Gc.compactions - g0.Gc.compactions);
        if Registry.events_enabled () then Registry.record_event name ~t0 ~t1)
  end
