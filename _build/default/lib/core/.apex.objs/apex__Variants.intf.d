lib/core/variants.mli: Apex_halide Apex_mapper Apex_merging Apex_mining
