(* Tests for the technology, interconnect and comparator models. *)

module Op = Apex_dfg.Op
module Tech = Apex_models.Tech
module Interconnect = Apex_models.Interconnect
module Comparators = Apex_models.Comparators

let check = Alcotest.check

let test_op_costs_positive () =
  List.iter
    (fun op ->
      let c = Tech.op_cost op in
      Alcotest.(check bool) (Op.mnemonic op ^ " area") true (c.area > 0.0);
      Alcotest.(check bool) (Op.mnemonic op ^ " energy") true (c.energy > 0.0);
      Alcotest.(check bool) (Op.mnemonic op ^ " delay") true (c.delay > 0.0))
    Op.all_compute

let test_mul_dominates () =
  let mul = Tech.op_cost Op.Mul and add = Tech.op_cost Op.Add in
  Alcotest.(check bool) "area" true (mul.area > 2.0 *. add.area);
  Alcotest.(check bool) "energy" true (mul.energy > 5.0 *. add.energy);
  Alcotest.(check bool) "delay" true (mul.delay > 1.5 *. add.delay)

let test_mux_cost_monotone () =
  let prev = ref (-1.0) in
  for n = 1 to 12 do
    let c = Tech.word_mux_cost n in
    Alcotest.(check bool) "monotone area" true (c.area >= !prev);
    prev := c.area
  done;
  check Alcotest.(float 0.001) "1-input mux is free" 0.0 (Tech.word_mux_cost 1).area

let test_slice_cheaper_than_block () =
  List.iter
    (fun op ->
      if Op.is_compute op then
        Alcotest.(check bool)
          (Op.mnemonic op ^ " slice < dedicated")
          true
          (Tech.op_slice op < (Tech.op_cost op).area))
    [ Op.Add; Op.Sub; Op.Smax; Op.Lshr; Op.Slt ]

let test_kind_cost_known_kinds () =
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " positive") true ((Tech.kind_cost k).area > 0.0))
    [ "alu"; "mul"; "shift"; "logic"; "cmp"; "mux"; "lut" ];
  Alcotest.(check bool) "unknown kind raises" true
    (try
       ignore (Tech.kind_cost "quantum");
       false
     with Invalid_argument _ -> true)

let test_config_overhead_linear () =
  let a = (Tech.config_overhead ~n_config_bits:10).area in
  let b = (Tech.config_overhead ~n_config_bits:20).area in
  check Alcotest.(float 0.001) "linear in bits" (2.0 *. a) b

(* --- interconnect --- *)

let test_sb_cost_scales_with_tracks () =
  let small = Interconnect.sb_cost { word_tracks = 2; bit_tracks = 2 } ~tile_outputs:2 in
  let big = Interconnect.sb_cost { word_tracks = 8; bit_tracks = 8 } ~tile_outputs:2 in
  Alcotest.(check bool) "more tracks cost more" true (big.area > 2.0 *. small.area)

let test_sb_reasonable_vs_pe () =
  (* the switch box must not dwarf the PE core (a bring-up bug we hit) *)
  let sb = Interconnect.sb_cost Interconnect.default ~tile_outputs:2 in
  let pe = Apex_merging.Datapath.area (Apex_peak.Library.baseline ()) in
  Alcotest.(check bool)
    (Printf.sprintf "SB %.0f < 3x PE %.0f" sb.area pe)
    true
    (sb.area < 3.0 *. pe)

let test_cb_cheaper_than_sb () =
  let sb = Interconnect.sb_cost Interconnect.default ~tile_outputs:2 in
  let cb = Interconnect.cb_cost Interconnect.default in
  Alcotest.(check bool) "cb < sb" true (cb.area < sb.area);
  let cb_bit = Interconnect.cb_bit_cost Interconnect.default in
  Alcotest.(check bool) "bit cb much cheaper" true (cb_bit.area < cb.area /. 4.0)

let test_tile_interconnect_additive () =
  let p = Interconnect.default in
  let base = Interconnect.tile_interconnect_cost p ~word_inputs:0 ~bit_inputs:0 ~tile_outputs:2 in
  let with_inputs =
    Interconnect.tile_interconnect_cost p ~word_inputs:3 ~bit_inputs:2 ~tile_outputs:2
  in
  Alcotest.(check bool) "inputs add CBs" true (with_inputs.area > base.area)

(* --- comparator models --- *)

let profile =
  { Comparators.word_ops = 60; mul_ops = 12; outputs = 1920 * 1080;
    critical_ops = 20 }

let test_fpga_worst_asic_best () =
  let fpga = Comparators.fpga profile in
  let asic = Comparators.asic profile in
  Alcotest.(check bool) "fpga uses much more energy" true
    (fpga.energy_uj > 30.0 *. asic.energy_uj);
  Alcotest.(check bool) "asic at least as fast" true
    (asic.runtime_ms <= fpga.runtime_ms);
  Alcotest.(check bool) "asic smaller" true (asic.area_mm2 < fpga.area_mm2)

let test_simba_near_asic () =
  let ml = { profile with mul_ops = 40; outputs = 56 * 56 * 16 } in
  let simba = Comparators.simba ml in
  let asic = Comparators.asic ml in
  Alcotest.(check bool) "within 30% of ASIC energy" true
    (simba.energy_uj < 1.3 *. asic.energy_uj);
  Alcotest.(check bool) "parallel MACs are fast" true
    (simba.runtime_ms < asic.runtime_ms)

let test_energy_scales_with_outputs () =
  let half = Comparators.fpga { profile with outputs = profile.outputs / 2 } in
  let full = Comparators.fpga profile in
  Alcotest.(check bool) "roughly halves" true
    (half.energy_uj < 0.55 *. full.energy_uj)

(* --- width scaling --- *)

let test_width_factor_exact_at_full () =
  (* 1.0 at the native 16 bits for every kind: the calibrated absolute
     areas (baseline PE ~988.8 um^2) must be untouched by the width
     model unless a narrowing was proven *)
  List.iter
    (fun kind ->
      check (Alcotest.float 0.0)
        (kind ^ " exact at 16")
        1.0
        (Tech.width_factor ~kind ~width:Tech.word_width))
    [ "alu"; "mul"; "shift"; "logic"; "cmp"; "mux"; "lut"; "creg" ]

let test_width_factor_scaling () =
  (* linear for ripple structures, quadratic for the multiplier array,
     flat for the already-bit-level lut *)
  check (Alcotest.float 1e-9) "alu halves" 0.5
    (Tech.width_factor ~kind:"alu" ~width:8);
  check (Alcotest.float 1e-9) "mul quarters" 0.25
    (Tech.width_factor ~kind:"mul" ~width:8);
  check (Alcotest.float 1e-9) "lut flat" 1.0
    (Tech.width_factor ~kind:"lut" ~width:8);
  (* a comparator's area is set by its word inputs, not its 1-bit
     result: flat, so the calibrated baseline (natural width 1) is
     unchanged *)
  check (Alcotest.float 1e-9) "cmp flat" 1.0
    (Tech.width_factor ~kind:"cmp" ~width:1);
  (* clamped into 1..16 *)
  check (Alcotest.float 1e-9) "clamp low" (1.0 /. 16.0)
    (Tech.width_factor ~kind:"alu" ~width:0);
  check (Alcotest.float 1e-9) "clamp high" 1.0
    (Tech.width_factor ~kind:"alu" ~width:99);
  (* monotone in width *)
  for w = 1 to 15 do
    Alcotest.(check bool)
      (Printf.sprintf "monotone at %d" w)
      true
      (Tech.width_factor ~kind:"alu" ~width:w
      < Tech.width_factor ~kind:"alu" ~width:(w + 1))
  done

let () =
  Alcotest.run "models"
    [ ( "tech",
        [ Alcotest.test_case "costs positive" `Quick test_op_costs_positive;
          Alcotest.test_case "mul dominates" `Quick test_mul_dominates;
          Alcotest.test_case "mux monotone" `Quick test_mux_cost_monotone;
          Alcotest.test_case "slices cheaper" `Quick test_slice_cheaper_than_block;
          Alcotest.test_case "kind costs" `Quick test_kind_cost_known_kinds;
          Alcotest.test_case "config overhead" `Quick test_config_overhead_linear;
          Alcotest.test_case "width factor exact at 16" `Quick
            test_width_factor_exact_at_full;
          Alcotest.test_case "width factor scaling" `Quick
            test_width_factor_scaling ] );
      ( "interconnect",
        [ Alcotest.test_case "sb scales with tracks" `Quick test_sb_cost_scales_with_tracks;
          Alcotest.test_case "sb vs pe sanity" `Quick test_sb_reasonable_vs_pe;
          Alcotest.test_case "cb cheaper" `Quick test_cb_cheaper_than_sb;
          Alcotest.test_case "tile additive" `Quick test_tile_interconnect_additive ] );
      ( "comparators",
        [ Alcotest.test_case "fpga/asic ordering" `Quick test_fpga_worst_asic_best;
          Alcotest.test_case "simba near asic" `Quick test_simba_near_asic;
          Alcotest.test_case "energy scaling" `Quick test_energy_scales_with_outputs ] ) ]
