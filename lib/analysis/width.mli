(** Proven per-node width inference: forward facts ({!Absint}) meet
    backward demanded bits ({!Demand}), every resulting narrowing
    discharged by a per-cone SMT query before it is kept.

    A node's live mask is [demanded ∧ ¬known-zero]; its width is the
    highest live bit plus one (at least 1).  The degradation ladder:
    proved (UNSAT query) → tested-only (whole-graph differential check,
    used when SMT is unavailable — the [width-smt-exhaust] fault site —
    with widths identical to the proved run) → reverted to the 16-bit
    naturals.  [infer] annotates the graph via
    {!Apex_dfg.Graph.annotate_widths} and emits the
    [analysis.width.*] counters: [checks_run], [cones_proved],
    [cones_rejected], [tested_only], [narrowed_nodes], [bits_saved],
    [validation_failures]. *)

type t = {
  demanded : int array;  (** raw backward demand mask per node *)
  live : int array;      (** validated live mask per node *)
  widths : int array;    (** validated width per node: msb(live)+1, min 1 *)
  naturals : int array;  (** the node's full hardware width (16 or 1) *)
  proved : int;          (** narrowing queries discharged UNSAT *)
  tested_only : int;     (** narrowings kept on differential evidence only *)
  rejected : int;        (** narrowing reverts (failed or cancelled queries) *)
  validated : bool;      (** every kept narrowing proved or tested *)
  outcome : Apex_guard.Outcome.t;
}

val infer : ?vectors:int -> Apex_dfg.Graph.t -> t
(** Analyze, validate and annotate.  [vectors] (default 64) sizes the
    differential fallback.  Never raises on budget expiry — a cancelled
    inference returns the natural widths with a [Degraded] outcome. *)

val narrowed_nodes : t -> int
(** Nodes whose validated width is strictly below natural. *)

val bits_saved : t -> int
(** Total width reduction, summed over all nodes. *)

val width_of_mask : int -> int
(** Highest set bit plus one, at least 1. *)

val validate_cone :
  Apex_dfg.Graph.t ->
  Absint.fact array ->
  Apex_dfg.Graph.node ->
  arg_mask:(int -> int) ->
  out_mask:int ->
  bool
(** One per-node narrowing proof (exposed for tests): under the
    arguments' forward facts, masking argument [j] to [arg_mask j] and
    the result to [out_mask] must not change the result's [out_mask]
    bits. *)

val differential_check : ?vectors:int -> Apex_dfg.Graph.t -> int array -> bool
(** [differential_check g live] — the tested-only rung: seeded random
    vectors through the evaluator that masks each node to the [live]
    bit-mask array (NOT a width array), versus {!Apex_dfg.Interp.run}. *)
