lib/cgra/bitstream.mli: Apex_mapper Apex_peak Place Route
