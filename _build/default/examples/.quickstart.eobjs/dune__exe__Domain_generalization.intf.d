examples/domain_generalization.mli:
