(* Lint engine tests: for every checker, a deliberately corrupted
   artifact must trip its specific APX code, and the nine built-in
   applications must come out clean (the `apex lint --all --werror`
   contract `make ci` relies on). *)

module Op = Apex_dfg.Op
module G = Apex_dfg.Graph
module Apps = Apex_halide.Apps
module Pattern = Apex_mining.Pattern
module Dp = Apex_merging.Datapath
module Rules = Apex_mapper.Rules
module Cover = Apex_mapper.Cover
module Pe_pipeline = Apex_pipelining.Pe_pipeline
module App_pipeline = Apex_pipelining.App_pipeline
module Diag = Apex_lint.Diagnostic
module Engine = Apex_lint.Engine

let check = Alcotest.check

let codes diags = List.map (fun (d : Diag.t) -> d.Diag.code) diags

let has code diags = List.mem code (codes diags)

let assert_emits what code diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s emits %s (got: %s)" what code
       (String.concat "," (codes diags)))
    true (has code diags)

let assert_clean what diags =
  Alcotest.(check (list string)) (what ^ " is clean") [] (codes diags)

let node id op args = { G.id; op; args }

(* --- DFG checker --- *)

let good_graph () =
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "x") in
  let y = G.Builder.add0 b (Op.Input "y") in
  let s = G.Builder.add2 b Op.Add x y in
  ignore (G.Builder.add1 b (Op.Output "o") s);
  G.Builder.finish b

let test_dfg_clean () =
  assert_clean "valid graph" (Apex_lint.Checks_dfg.run (good_graph ()))

let test_dfg_id_mismatch () =
  let g =
    G.of_nodes_unchecked
      [| node 0 (Op.Input "x") [||]; node 7 (Op.Output "o") [| 0 |] |]
  in
  assert_emits "id/index mismatch" "APX001" (Apex_lint.Checks_dfg.run g)

let test_dfg_arity () =
  let g =
    G.of_nodes_unchecked
      [| node 0 (Op.Input "x") [||];
         node 1 Op.Add [| 0 |];
         node 2 (Op.Output "o") [| 1 |] |]
  in
  assert_emits "wrong arity" "APX002" (Apex_lint.Checks_dfg.run g)

let test_dfg_topological_order () =
  let g =
    G.of_nodes_unchecked
      [| node 0 (Op.Input "x") [||];
         node 1 Op.Add [| 0; 2 |];
         node 2 (Op.Input "y") [||];
         node 3 (Op.Output "o") [| 1 |] |]
  in
  assert_emits "forward reference" "APX003" (Apex_lint.Checks_dfg.run g)

let test_dfg_width_mismatch () =
  let g =
    G.of_nodes_unchecked
      [| node 0 (Op.Input "x") [||];
         node 1 (Op.Input "y") [||];
         node 2 Op.Ult [| 0; 1 |];   (* produces a bit *)
         node 3 Op.Add [| 2; 0 |];   (* port 0 wants a word *)
         node 4 (Op.Output "o") [| 3 |] |]
  in
  assert_emits "bit into word port" "APX004" (Apex_lint.Checks_dfg.run g)

let test_dfg_duplicate_names () =
  let g =
    G.of_nodes_unchecked
      [| node 0 (Op.Input "x") [||];
         node 1 (Op.Input "x") [||];
         node 2 Op.Add [| 0; 1 |];
         node 3 (Op.Output "o") [| 2 |] |]
  in
  assert_emits "duplicate input name" "APX005" (Apex_lint.Checks_dfg.run g)

let test_dfg_dead_compute () =
  let g =
    G.of_nodes_unchecked
      [| node 0 (Op.Input "x") [||];
         node 1 (Op.Input "y") [||];
         node 2 Op.Mul [| 0; 1 |];   (* nothing consumes this *)
         node 3 Op.Add [| 0; 1 |];
         node 4 (Op.Output "o") [| 3 |] |]
  in
  assert_emits "dead compute node" "APX006" (Apex_lint.Checks_dfg.run g)

let test_dfg_dangling_input () =
  let g =
    G.of_nodes_unchecked
      [| node 0 (Op.Input "x") [||];
         node 1 (Op.Input "unused") [||];
         node 2 (Op.Output "o") [| 0 |] |]
  in
  assert_emits "dangling input" "APX007" (Apex_lint.Checks_dfg.run g)

let test_dfg_constant_range () =
  let g =
    G.of_nodes_unchecked
      [| node 0 (Op.Const 0x1_0000) [||]; node 1 (Op.Output "o") [| 0 |] |]
  in
  assert_emits "oversized constant" "APX008" (Apex_lint.Checks_dfg.run g)

(* --- datapath checker ---

   A hand-built one-FU subtractor: ports 0 and 1 feed FU 2 both straight
   and crossed, so a config can be structurally valid yet functionally
   wrong (crossed routes compute b - a). *)

let sub_pattern () =
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "a") in
  let y = G.Builder.add0 b (Op.Input "b") in
  let s = G.Builder.add2 b Op.Sub x y in
  ignore (G.Builder.add1 b (Op.Output "o") s);
  Pattern.of_graph (G.Builder.finish b)

let sub_dp () =
  let p = sub_pattern () in
  (* bind pattern inputs by the Sub node's operand order, so the straight
     routing below computes exactly the pattern regardless of how
     canonicalization numbered the inputs *)
  let sub_node =
    Array.to_list (G.nodes (Pattern.graph p))
    |> List.find (fun (nd : G.node) -> nd.G.op = Op.Sub)
  in
  let i0 = sub_node.G.args.(0) and i1 = sub_node.G.args.(1) in
  let nodes =
    [| { Dp.id = 0; kind = Dp.In_port; ops = []; width = 16 };
       { Dp.id = 1; kind = Dp.In_port; ops = []; width = 16 };
       { Dp.id = 2; kind = Dp.Fu (Op.kind Op.Sub); ops = [ Op.Sub ]; width = 16 } |]
  in
  let edges =
    [ { Dp.src = 0; dst = 2; port = 0 };
      { Dp.src = 1; dst = 2; port = 1 };
      { Dp.src = 1; dst = 2; port = 0 };
      { Dp.src = 0; dst = 2; port = 1 } ]
  in
  let cfg =
    { Dp.label = Pattern.code p;
      fu_ops = [ (2, Op.Sub) ];
      routes = [ ((2, 0), 0); ((2, 1), 1) ];
      consts = [];
      inputs = [ (i0, 0); (i1, 1) ];
      outputs = [ (0, 2) ] }
  in
  (p, cfg, { Dp.nodes; edges; configs = [ cfg ] })

let run_dp ?patterns dp = Apex_lint.Checks_datapath.run ?patterns dp

let test_dp_clean () =
  let p, _, dp = sub_dp () in
  assert_clean "valid datapath" (run_dp ~patterns:[ p ] dp)

let test_dp_duplicate_edge () =
  let p, _, dp = sub_dp () in
  let dp = { dp with Dp.edges = List.hd dp.Dp.edges :: dp.Dp.edges } in
  assert_emits "duplicate edge" "APX020" (run_dp ~patterns:[ p ] dp)

let test_dp_static_cycle () =
  let alu = Op.kind Op.Add in
  let dp =
    { Dp.nodes =
        [| { Dp.id = 0; kind = Dp.Fu alu; ops = [ Op.Add ]; width = 16 };
           { Dp.id = 1; kind = Dp.Fu alu; ops = [ Op.Add ]; width = 16 } |];
      edges =
        [ { Dp.src = 0; dst = 1; port = 0 }; { Dp.src = 1; dst = 0; port = 0 } ];
      configs = [] }
  in
  assert_emits "static cycle" "APX022" (run_dp dp)

let test_dp_missing_route_edge () =
  let p, cfg, dp = sub_dp () in
  let cfg = { cfg with Dp.routes = [ ((2, 0), 2); ((2, 1), 1) ] } in
  let dp = { dp with Dp.configs = [ cfg ] } in
  assert_emits "route over missing edge" "APX023" (run_dp ~patterns:[ p ] dp)

let test_dp_inexhaustive_selects () =
  let p, cfg, dp = sub_dp () in
  let cfg = { cfg with Dp.routes = [ ((2, 0), 0) ] } in
  let dp = { dp with Dp.configs = [ cfg ] } in
  assert_emits "port without route" "APX024" (run_dp ~patterns:[ p ] dp)

let test_dp_coverage () =
  let p, cfg, dp = sub_dp () in
  let cfg = { cfg with Dp.fu_ops = []; routes = [] } in
  let dp = { dp with Dp.configs = [ cfg ] } in
  assert_emits "coverage broken" "APX025" (run_dp ~patterns:[ p ] dp)

let test_dp_functional_mismatch () =
  (* crossed routes: structurally valid, computes b - a *)
  let p, cfg, dp = sub_dp () in
  let cfg = { cfg with Dp.routes = [ ((2, 0), 1); ((2, 1), 0) ] } in
  let dp = { dp with Dp.configs = [ cfg ] } in
  assert_emits "crossed routes" "APX026" (run_dp ~patterns:[ p ] dp)

let test_dp_dead_fu () =
  let p, _, dp = sub_dp () in
  let dead = { Dp.id = 3; kind = Dp.Fu (Op.kind Op.Mul); ops = [ Op.Mul ]; width = 16 } in
  let dp = { dp with Dp.nodes = Array.append dp.Dp.nodes [| dead |] } in
  assert_emits "dead FU" "APX027" (run_dp ~patterns:[ p ] dp)

let test_dp_constant_range () =
  let p, cfg, dp = sub_dp () in
  let creg = { Dp.id = 3; kind = Dp.Creg; ops = []; width = 16 } in
  let cfg = { cfg with Dp.consts = [ (3, 0x1_0000) ] } in
  let dp =
    { dp with
      Dp.nodes = Array.append dp.Dp.nodes [| creg |];
      configs = [ cfg ] }
  in
  assert_emits "oversized constant register" "APX028" (run_dp ~patterns:[ p ] dp)

(* --- rule checker --- *)

let sub_rule () =
  let p, cfg, dp = sub_dp () in
  (dp, { Rules.pattern = p; config = cfg; wild_consts = false; size = 1 })

let test_rules_clean () =
  let dp, r = sub_rule () in
  assert_clean "valid rule" (Apex_lint.Checks_rules.run ~dp [ r ])

let test_rules_bad_config () =
  let dp, r = sub_rule () in
  let r =
    { r with
      Rules.config =
        { r.Rules.config with Dp.routes = [ ((2, 0), 2); ((2, 1), 1) ] } }
  in
  assert_emits "rule with broken config" "APX040"
    (Apex_lint.Checks_rules.run ~dp [ r ])

let test_rules_unusable () =
  let dp, r = sub_rule () in
  let r = { r with Rules.config = { r.Rules.config with Dp.inputs = [] } } in
  assert_emits "unbound pattern inputs" "APX041"
    (Apex_lint.Checks_rules.run ~dp [ r ])

let test_rules_shadowed () =
  let dp, r = sub_rule () in
  assert_emits "duplicate rule" "APX042" (Apex_lint.Checks_rules.run ~dp [ r; r ])

let test_rules_wrong_semantics () =
  let dp, r = sub_rule () in
  let r =
    { r with
      Rules.config =
        { r.Rules.config with Dp.routes = [ ((2, 0), 1); ((2, 1), 0) ] } }
  in
  assert_emits "rule computing the wrong function" "APX043"
    (Apex_lint.Checks_rules.run ~dp [ r ])

let test_rules_library_not_shadowed () =
  (* $c0/$c1 const variants share a canonical code but match different
     concrete sites — the shadowing check must not flag them *)
  let v = Apex.Dse.baseline () in
  let diags =
    Apex_lint.Checks_rules.run ~dp:v.Apex.Variants.dp v.Apex.Variants.rules
  in
  Alcotest.(check (list string))
    "library rules unshadowed" []
    (codes (List.filter (fun (d : Diag.t) -> d.Diag.code = "APX042") diags))

(* --- pipeline checker (on the real flow's artifacts) --- *)

let gaussian_artifacts =
  lazy
    (let app = Apps.by_name "gaussian" in
     let v = Apex.Dse.pe_k app 2 in
     let plan = Pe_pipeline.plan v.Apex.Variants.dp in
     let mapped = Cover.map_app ~rules:v.Apex.Variants.rules app.Apps.graph in
     let aplan =
       App_pipeline.balance mapped ~pe_latency:plan.Pe_pipeline.stages
     in
     (v.Apex.Variants.dp, plan, mapped, aplan))

let test_pipe_clean () =
  let dp, plan, mapped, aplan = Lazy.force gaussian_artifacts in
  assert_clean "real PE plan" (Apex_lint.Checks_pipeline.run_pe dp plan);
  assert_clean "real app plan" (Apex_lint.Checks_pipeline.run_app mapped aplan)

let test_pipe_infeasible () =
  let dp, plan, _, _ = Lazy.force gaussian_artifacts in
  let bad = { plan with Pe_pipeline.stages = 1; period_ps = 1.0 } in
  assert_emits "infeasible plan" "APX060"
    (Apex_lint.Checks_pipeline.run_pe dp bad);
  let zero = { plan with Pe_pipeline.stages = 0 } in
  assert_emits "zero stages" "APX060" (Apex_lint.Checks_pipeline.run_pe dp zero)

let test_pipe_reg_accounting () =
  let dp, plan, _, _ = Lazy.force gaussian_artifacts in
  let bad =
    { plan with Pe_pipeline.regs_inserted = plan.Pe_pipeline.regs_inserted + 1 }
  in
  assert_emits "register miscount" "APX061"
    (Apex_lint.Checks_pipeline.run_pe dp bad)

let test_pipe_unbalanced () =
  let _, _, mapped, aplan = Lazy.force gaussian_artifacts in
  (* skew one input of a reconvergent instance by an extra register *)
  let idx =
    let found = ref (-1) in
    Array.iteri
      (fun i (inst : Cover.instance) ->
        if !found < 0 && List.length inst.Cover.inputs >= 2 then found := i)
      mapped.Cover.instances;
    !found
  in
  Alcotest.(check bool) "a reconvergent instance exists" true (idx >= 0);
  let port = fst (List.hd mapped.Cover.instances.(idx).Cover.inputs) in
  let prev =
    Option.value ~default:0
      (List.assoc_opt (idx, port) aplan.App_pipeline.edge_regs)
  in
  let bad =
    { aplan with
      App_pipeline.edge_regs =
        ((idx, port), prev + 1)
        :: List.remove_assoc (idx, port) aplan.App_pipeline.edge_regs }
  in
  assert_emits "unbalanced reconvergence" "APX063"
    (Apex_lint.Checks_pipeline.run_app mapped bad)

let test_pipe_depth () =
  let _, _, mapped, aplan = Lazy.force gaussian_artifacts in
  let bad =
    { aplan with
      App_pipeline.depth_cycles = aplan.App_pipeline.depth_cycles + 1 }
  in
  assert_emits "depth mismatch" "APX064"
    (Apex_lint.Checks_pipeline.run_app mapped bad)

let test_pipe_negative_chain () =
  let _, _, mapped, aplan = Lazy.force gaussian_artifacts in
  let bad =
    { aplan with
      App_pipeline.edge_regs = ((0, -99), -1) :: aplan.App_pipeline.edge_regs }
  in
  assert_emits "negative register chain" "APX065"
    (Apex_lint.Checks_pipeline.run_app mapped bad)

(* --- semantic analysis checker (abstract-interpretation backed) --- *)

let test_analysis_clean () =
  assert_clean "valid graph" (Apex_lint.Checks_analysis.run (good_graph ()))

let test_analysis_rejects_corrupt () =
  (* the analysis assumes a valid graph; corrupt input belongs to the
     structural checkers *)
  assert_clean "corrupt graph skipped"
    (Apex_lint.Checks_analysis.run
       (G.of_nodes_unchecked
          [| node 0 (Op.Input "x") [||]; node 1 Op.Add [| 0 |] |]))

let test_analysis_dead_mux_arm () =
  let b = G.Builder.create () in
  let s = G.Builder.add0 b (Op.Bit_const true) in
  let x = G.Builder.add0 b (Op.Input "x") in
  let y = G.Builder.add0 b (Op.Input "y") in
  let m = G.Builder.add3 b Op.Mux s x y in
  ignore (G.Builder.add1 b (Op.Output "o") m);
  assert_emits "constant mux select" "APX100"
    (Apex_lint.Checks_analysis.run (G.Builder.finish b))

let test_analysis_decided_predicate () =
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "x") in
  let p = G.Builder.add2 b Op.Slt x x in
  ignore (G.Builder.add1 b (Op.Bit_output "p") p);
  assert_emits "x < x is always false" "APX101"
    (Apex_lint.Checks_analysis.run (G.Builder.finish b))

let test_analysis_saturating_shift () =
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "x") in
  let k = G.Builder.add0 b (Op.Const 20) in
  let s = G.Builder.add2 b Op.Shl x k in
  ignore (G.Builder.add1 b (Op.Output "o") s);
  assert_emits "shift by 20 saturates" "APX102"
    (Apex_lint.Checks_analysis.run (G.Builder.finish b))

let test_analysis_duplicate_node () =
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "x") in
  let y = G.Builder.add0 b (Op.Input "y") in
  let a1 = G.Builder.add2 b Op.Add x y in
  (* commutative arguments are normalized, so y + x duplicates x + y *)
  let a2 = G.Builder.add2 b Op.Add y x in
  let m = G.Builder.add2 b Op.Mul a1 a2 in
  ignore (G.Builder.add1 b (Op.Output "o") m);
  assert_emits "y + x duplicates x + y" "APX103"
    (Apex_lint.Checks_analysis.run (G.Builder.finish b))

(* --- engine, phase boundaries, catalog and the full-flow contract --- *)

let bad_dfg () =
  G.of_nodes_unchecked [| node 0 (Op.Input "x") [||]; node 1 Op.Add [| 0 |] |]

let test_engine_dispatch () =
  let report =
    Engine.run
      [ Engine.Dfg { label = "good"; graph = good_graph () };
        Engine.Dfg { label = "bad"; graph = bad_dfg () } ]
  in
  check Alcotest.int "two artifacts" 2 report.Engine.artifacts;
  (* each Dfg artifact is visited by the structural, analysis and width
     checkers *)
  check Alcotest.int "six checks" 6 report.Engine.checks;
  Alcotest.(check bool) "findings present" true (report.Engine.findings <> []);
  Alcotest.(check bool) "findings on bad only" true
    (List.for_all
       (fun (f : Engine.finding) -> f.Engine.artifact = "bad")
       report.Engine.findings);
  check Alcotest.int "exit 1 on errors" 1 (Engine.exit_code ~werror:false report);
  match Engine.report_to_json report with
  | Apex_telemetry.Json.Obj fields ->
      Alcotest.(check bool) "json has findings and summary" true
        (List.mem_assoc "findings" fields && List.mem_assoc "summary" fields)
  | _ -> Alcotest.fail "report_to_json must produce an object"

let test_engine_werror () =
  let g =
    G.of_nodes_unchecked
      [| node 0 (Op.Input "x") [||];
         node 1 (Op.Input "y") [||];
         node 2 Op.Mul [| 0; 1 |];
         node 3 Op.Add [| 0; 1 |];
         node 4 (Op.Output "o") [| 3 |] |]
  in
  let report = Engine.run [ Engine.Dfg { label = "warn"; graph = g } ] in
  check Alcotest.int "only warnings" 0 (Engine.errors report);
  check Alcotest.int "warnings do not fail" 0
    (Engine.exit_code ~werror:false report);
  check Alcotest.int "werror promotes" 1 (Engine.exit_code ~werror:true report)

let test_engine_counters () =
  Apex_telemetry.Registry.reset ();
  Apex_telemetry.Registry.enable ();
  Fun.protect ~finally:Apex_telemetry.Registry.disable @@ fun () ->
  ignore (Engine.run [ Engine.Dfg { label = "g"; graph = good_graph () } ]);
  Alcotest.(check bool) "lint.checks_run counted" true
    (Apex_telemetry.Counter.get "lint.checks_run" > 0)

let test_check_phase_boundary () =
  let bad = [ Engine.Dfg { label = "bad"; graph = bad_dfg () } ] in
  (* inert by default *)
  Apex.Check.verify "test" bad;
  Apex.Check.enable ();
  Fun.protect ~finally:Apex.Check.disable @@ fun () ->
  match Apex.Check.verify "test" bad with
  | () -> Alcotest.fail "Check.verify must abort on errors when enabled"
  | exception Invalid_argument m ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the phase (got %S)" m)
        true
        (String.length m >= 11 && String.sub m 0 11 = "Check.test:")

let test_catalog_complete () =
  let catalog_codes =
    List.map (fun (i : Diag.info) -> i.Diag.code_info) Diag.catalog
  in
  Alcotest.(check bool) "codes unique" true
    (List.length catalog_codes
    = List.length (List.sort_uniq compare catalog_codes));
  (* every code the seeded-defect tests rely on is documented *)
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " in catalog") true (List.mem c catalog_codes))
    [ "APX001"; "APX002"; "APX003"; "APX004"; "APX005"; "APX006"; "APX007";
      "APX008"; "APX020"; "APX022"; "APX023"; "APX024"; "APX025"; "APX026";
      "APX027"; "APX028"; "APX040"; "APX041"; "APX042"; "APX043"; "APX060";
      "APX061"; "APX063"; "APX064"; "APX065"; "APX100"; "APX101"; "APX102";
      "APX103"; "APX110"; "APX111"; "APX112" ]

let test_all_apps_clean () =
  (* raw kernels: structurally clean; the semantic analysis checkers may
     legitimately warn about provable redundancy (camera's clamp chain),
     but only with APX1xx codes *)
  let report = Apex.Lint_run.run (Apex.Lint_run.all_apps ()) in
  check Alcotest.int "no errors on built-in apps" 0 (Engine.errors report);
  List.iter
    (fun (f : Engine.finding) ->
      Alcotest.(check bool)
        (Printf.sprintf "only analysis warnings on raw kernels (got %s)"
           f.Engine.diag.Diag.code)
        true
        (String.length f.Engine.diag.Diag.code = 6
        && String.sub f.Engine.diag.Diag.code 0 4 = "APX1"))
    report.Engine.findings

let test_all_apps_clean_optimized () =
  (* the `apex lint --all --optimize --werror` contract `make ci` relies
     on: optimized kernels are free of semantic redundancy too *)
  Apex.Optimize.enable ();
  Fun.protect ~finally:Apex.Optimize.disable @@ fun () ->
  let report = Apex.Lint_run.run (Apex.Lint_run.all_apps ()) in
  check Alcotest.int "no errors on optimized apps" 0 (Engine.errors report);
  check Alcotest.int "no warnings on optimized apps" 0 (Engine.warnings report);
  check Alcotest.int "werror-clean" 0 (Engine.exit_code ~werror:true report)

(* --- width checker (APX11x) and code filters --- *)

(* x&0xff + y&0xff: the sum has 9 live bits, the masked inputs 8 *)
let narrowable_graph () =
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "x") in
  let y = G.Builder.add0 b (Op.Input "y") in
  let m = G.Builder.add0 b (Op.Const 0xff) in
  let xl = G.Builder.add2 b Op.And x m in
  let yl = G.Builder.add2 b Op.And y m in
  let s = G.Builder.add2 b Op.Add xl yl in
  ignore (G.Builder.add1 b (Op.Output "o") s);
  G.Builder.finish b

let test_width_opportunity_note () =
  (* unannotated narrowable graph: one aggregate APX110 note, nothing
     more severe *)
  let diags = Apex_lint.Checks_width.run (narrowable_graph ()) in
  assert_emits "narrowable unannotated graph" "APX110" diags;
  Alcotest.(check bool) "notes only" true
    (List.for_all (fun (d : Diag.t) -> d.Diag.severity = Diag.Note) diags)

let test_width_clean_after_inference () =
  (* a graph annotated by the inference itself carries no width errors *)
  let g = narrowable_graph () in
  ignore (Apex_analysis.Width.infer g);
  let diags = Apex_lint.Checks_width.run g in
  Alcotest.(check bool)
    (Printf.sprintf "no errors after inference (got: %s)"
       (String.concat "," (codes diags)))
    true
    (List.for_all (fun (d : Diag.t) -> d.Diag.severity <> Diag.Error) diags)

let test_width_truncation () =
  let g = narrowable_graph () in
  let w = Array.make (G.length g) 16 in
  (* the Add (node 5) provably needs 9 live bits; claiming 4 is unsound *)
  w.(5) <- 4;
  G.annotate_widths g w;
  assert_emits "truncating annotation" "APX111" (Apex_lint.Checks_width.run g)

let test_width_out_of_range () =
  let g = narrowable_graph () in
  let w = Array.make (G.length g) 16 in
  w.(0) <- 0;
  G.annotate_widths g w;
  assert_emits "width 0" "APX111" (Apex_lint.Checks_width.run g)

let test_width_mux_inconsistent () =
  let b = G.Builder.create () in
  let x = G.Builder.add0 b (Op.Input "x") in
  let y = G.Builder.add0 b (Op.Input "y") in
  let s = G.Builder.add0 b (Op.Bit_input "s") in
  let m = G.Builder.add3 b Op.Mux s x y in
  ignore (G.Builder.add1 b (Op.Output "o") m);
  let g = G.Builder.finish b in
  let w = Array.make (G.length g) 16 in
  w.(s) <- 1;
  (* full-width arms through a 4-bit mux *)
  w.(m) <- 4;
  G.annotate_widths g w;
  assert_emits "narrow mux, wide arms" "APX112"
    (Apex_lint.Checks_width.run g)

let finding code severity =
  { Engine.artifact = "a"; checker = "c";
    diag = Diag.make severity ~code "seeded" }

let test_filter_report () =
  let r =
    { Engine.findings =
        [ finding "APX001" Diag.Error; finding "APX110" Diag.Note;
          finding "APX111" Diag.Error; finding "APX101" Diag.Warning ];
      artifacts = 1; checks = 1 }
  in
  let codes_of r =
    List.map (fun (f : Engine.finding) -> f.Engine.diag.Diag.code)
      r.Engine.findings
  in
  check
    Alcotest.(list string)
    "--only exact" [ "APX001" ]
    (codes_of (Engine.filter_report ~only:[ "APX001" ] r));
  check
    Alcotest.(list string)
    "--only family wildcard" [ "APX110"; "APX111" ]
    (codes_of (Engine.filter_report ~only:[ "APX11x" ] r));
  check
    Alcotest.(list string)
    "--except drops" [ "APX001"; "APX101" ]
    (codes_of (Engine.filter_report ~except:[ "APX11x" ] r));
  check
    Alcotest.(list string)
    "--only then --except" [ "APX111" ]
    (codes_of
       (Engine.filter_report ~only:[ "APX11x" ] ~except:[ "APX110" ] r));
  (* counts and exit codes follow the filtered findings *)
  let f = Engine.filter_report ~only:[ "APX110" ] r in
  check Alcotest.int "filtered errors" 0 (Engine.errors f);
  check Alcotest.int "filtered exit" 0 (Engine.exit_code ~werror:true f);
  check Alcotest.int "counts preserved" 1 f.Engine.artifacts

let test_validate_code () =
  Alcotest.(check bool) "exact code ok" true
    (Result.is_ok (Engine.validate_code "APX110"));
  Alcotest.(check bool) "family ok" true
    (Result.is_ok (Engine.validate_code "APX11x"));
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Engine.validate_code "APX999"));
  Alcotest.(check bool) "unknown family rejected" true
    (Result.is_error (Engine.validate_code "APX9x"));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Engine.validate_code "bogus"))

let () =
  Alcotest.run "lint"
    [ ( "dfg",
        [ Alcotest.test_case "clean" `Quick test_dfg_clean;
          Alcotest.test_case "id mismatch" `Quick test_dfg_id_mismatch;
          Alcotest.test_case "arity" `Quick test_dfg_arity;
          Alcotest.test_case "topological order" `Quick
            test_dfg_topological_order;
          Alcotest.test_case "width mismatch" `Quick test_dfg_width_mismatch;
          Alcotest.test_case "duplicate names" `Quick test_dfg_duplicate_names;
          Alcotest.test_case "dead compute" `Quick test_dfg_dead_compute;
          Alcotest.test_case "dangling input" `Quick test_dfg_dangling_input;
          Alcotest.test_case "constant range" `Quick test_dfg_constant_range ] );
      ( "datapath",
        [ Alcotest.test_case "clean" `Quick test_dp_clean;
          Alcotest.test_case "duplicate edge" `Quick test_dp_duplicate_edge;
          Alcotest.test_case "static cycle" `Quick test_dp_static_cycle;
          Alcotest.test_case "missing route edge" `Quick
            test_dp_missing_route_edge;
          Alcotest.test_case "inexhaustive selects" `Quick
            test_dp_inexhaustive_selects;
          Alcotest.test_case "coverage" `Quick test_dp_coverage;
          Alcotest.test_case "functional mismatch" `Quick
            test_dp_functional_mismatch;
          Alcotest.test_case "dead FU" `Quick test_dp_dead_fu;
          Alcotest.test_case "constant range" `Quick test_dp_constant_range ] );
      ( "rules",
        [ Alcotest.test_case "clean" `Quick test_rules_clean;
          Alcotest.test_case "bad config" `Quick test_rules_bad_config;
          Alcotest.test_case "unusable" `Quick test_rules_unusable;
          Alcotest.test_case "shadowed" `Quick test_rules_shadowed;
          Alcotest.test_case "wrong semantics" `Quick test_rules_wrong_semantics;
          Alcotest.test_case "library not shadowed" `Quick
            test_rules_library_not_shadowed ] );
      ( "pipeline",
        [ Alcotest.test_case "clean" `Quick test_pipe_clean;
          Alcotest.test_case "infeasible" `Quick test_pipe_infeasible;
          Alcotest.test_case "reg accounting" `Quick test_pipe_reg_accounting;
          Alcotest.test_case "unbalanced" `Quick test_pipe_unbalanced;
          Alcotest.test_case "depth" `Quick test_pipe_depth;
          Alcotest.test_case "negative chain" `Quick test_pipe_negative_chain ] );
      ( "analysis",
        [ Alcotest.test_case "clean" `Quick test_analysis_clean;
          Alcotest.test_case "rejects corrupt" `Quick
            test_analysis_rejects_corrupt;
          Alcotest.test_case "dead mux arm" `Quick test_analysis_dead_mux_arm;
          Alcotest.test_case "decided predicate" `Quick
            test_analysis_decided_predicate;
          Alcotest.test_case "saturating shift" `Quick
            test_analysis_saturating_shift;
          Alcotest.test_case "duplicate node" `Quick
            test_analysis_duplicate_node ] );
      ( "width",
        [ Alcotest.test_case "opportunity note" `Quick
            test_width_opportunity_note;
          Alcotest.test_case "clean after inference" `Quick
            test_width_clean_after_inference;
          Alcotest.test_case "truncation" `Quick test_width_truncation;
          Alcotest.test_case "out of range" `Quick test_width_out_of_range;
          Alcotest.test_case "mux inconsistent" `Quick
            test_width_mux_inconsistent ] );
      ( "filters",
        [ Alcotest.test_case "filter report" `Quick test_filter_report;
          Alcotest.test_case "validate code" `Quick test_validate_code ] );
      ( "engine",
        [ Alcotest.test_case "dispatch" `Quick test_engine_dispatch;
          Alcotest.test_case "werror" `Quick test_engine_werror;
          Alcotest.test_case "telemetry counters" `Quick test_engine_counters;
          Alcotest.test_case "phase boundary" `Quick test_check_phase_boundary;
          Alcotest.test_case "catalog" `Quick test_catalog_complete;
          Alcotest.test_case "all apps clean" `Quick test_all_apps_clean;
          Alcotest.test_case "all apps clean (optimized)" `Quick
            test_all_apps_clean_optimized ] ) ]
