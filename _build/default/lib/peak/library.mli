(** Ready-made PE datapaths: the general-purpose baseline PE of the
    comparison system [3] (Fig. 1) and its application-restricted
    variants (the paper's "PE 1").

    The constructed datapaths carry one configuration per supported
    operation (plus constant-operand variants), so they already contain
    the single-operation rewrite rules; specialized PEs are obtained by
    merging mined patterns into them with {!Apex_merging.Merge}. *)

val baseline_ops : Apex_dfg.Op.t list
(** Every operation of the baseline PE: full ALU (add/sub/abs/min/max),
    multiplier, barrel shifter, bitwise logic, comparisons, word mux and
    the 3-input LUT. *)

val baseline : unit -> Apex_merging.Datapath.t
(** The general-purpose baseline PE: two 16-bit data inputs, three 1-bit
    inputs, two constant registers, one functional-unit block per
    operation kind, flexible operand muxing, a 16-bit and a 1-bit
    output. *)

val subset : ops:Apex_dfg.Op.t list -> Apex_merging.Datapath.t
(** "PE 1": the baseline structure restricted to the given operations;
    unused blocks, bit inputs and outputs disappear. *)

val ops_of_graph : Apex_dfg.Graph.t -> Apex_dfg.Op.t list
(** The distinct compute operations an application graph needs —
    the op set for its PE 1 ([Lut] tables and [Const] values are
    normalized away). *)
